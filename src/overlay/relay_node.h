// Per-device agent of the multi-hop collection overlay.
//
// A RelayNode owns its device's network handler and plays both overlay
// roles:
//
//  * endpoint -- floods that target this node (or everyone) are served by
//    the co-located Prover (a real buffer read, no cryptography) and the
//    response enters the relay queue addressed up the flood's tree;
//  * relay    -- reports from deeper nodes are stored in a bounded
//    store-and-forward queue and forwarded one per `forward_spacing`
//    toward this node's parent for that flood. Overflow drops (and drop
//    accounting) model a constrained radio, not an infinite pipe.
//
// Route state is per flood id: the parent is the neighbour the flood was
// first heard from, and every duplicate arrival is remembered as an
// alternate uplink. When a report is about to be forwarded and a link
// probe says the parent has moved out of range, the node repairs the
// route onto a still-connected alternate (counted in stats) -- the
// mobility-aware re-discovery that keeps a round alive when the topology
// churns mid-collection.
//
// Scoped retries (wire.h ScopedRequest) ride the same route table: a
// source-routed request records each sender as the parent for its flood
// id while it travels down, serves at the target, and the response
// report climbs back over those parents. A hop whose next link is down
// answers with a ScopedNak toward the verifier instead of forwarding
// blindly. Reports stamp the node's store-and-forward queue occupancy as
// they pass, so the verifier sees relay congestion end to end.
#pragma once

#include <deque>
#include <map>
#include <set>
#include <unordered_set>
#include <vector>

#include "aggregate/combine.h"
#include "aggregate/election.h"
#include "attest/prover.h"
#include "energy/meter.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "overlay/wire.h"
#include "sim/event_queue.h"

namespace erasmus::overlay {

/// Hierarchical collection: this node's cluster-head behaviour. With
/// `enabled`, a node elected head for a flood (aggregate/election.h)
/// holds the child reports flowing through it for `window`, judges them
/// against its own latest digest, and uplinks ONE authenticated
/// AggregateFrame instead of each report individually. Late reports that
/// miss the window simply relay raw -- aggregation is an optimisation,
/// never a correctness gate.
struct AggregationConfig {
  bool enabled = false;
  aggregate::ElectionPolicy election;
  /// Hold-and-combine window, measured from election (the flood's first
  /// sight). Must sit well under the verifier's response timeout.
  sim::Duration window = sim::Duration::millis(200);
  /// Flush early once a cluster holds this many members.
  size_t max_members = 256;
  /// Head CPU for the combine (hashing absorbed evidence + one MAC),
  /// charged at flush with the absorbed byte count. Runner-installed;
  /// nullptr = unmetered. May brown the head out: a dark head's
  /// aggregate never leaves (counted aggregates_dark_purged).
  std::function<void(uint64_t combined_bytes, sim::Time at)> combine_charge;
};

struct RelayNodeConfig {
  /// Store-and-forward buffer capacity (reports queued for the uplink).
  size_t queue_depth = 16;
  /// Radio serialization: one queued report leaves every this-often.
  sim::Duration forward_spacing = sim::Duration::millis(1);
  /// Route (uplink) state is kept for this many most-recent floods;
  /// older floods' parent entries are pruned (their late reports become
  /// orphans). Size it to the number of floods that can be in flight at
  /// once -- a round broadcast plus one targeted flood per retried
  /// session. NOTE: this bounds route state only; flood DEDUP uses a
  /// separate id watermark, so pruning can never re-trigger a re-flood
  /// (a pruned id mistaken for "first sight" would echo exponentially).
  size_t flood_memory = 64;
  /// Flight recorder for queue-drop / route-repair events (category
  /// kOverlay, actor = this node). Not owned; nullptr = no tracing.
  obs::TraceRecorder* trace = nullptr;
  /// Metrics registry. Registration is idempotent, so every node in a
  /// thousand-node swarm shares ONE "relay_drops" counter and one
  /// queue-occupancy histogram under subsystem "overlay". Not owned.
  obs::Registry* metrics = nullptr;
  /// This node's battery meter (not owned; nullptr = unmetered). A dark
  /// node has browned out: frames it would have heard are dropped on
  /// arrival and its store-and-forward queue is purged -- radio bytes are
  /// charged by the network's energy tap, not here.
  const energy::DeviceMeter* meter = nullptr;
  /// Cluster-head aggregation (hierarchical collection).
  AggregationConfig aggregation;
  /// Adversarial compromise of THIS node (src/adversary). A compromised
  /// relay keeps serving its own requests -- staying a credible tree
  /// member is the attack's cover -- but turns on the traffic it relays
  /// for others.
  struct Compromise {
    /// Silently discard relayed reports/aggregates (counted
    /// dropped_adversarial, never conflated with queue overflow).
    bool drop_relayed = false;
    /// Scribble relayed frames instead of dropping: the mangled bytes
    /// still burn queue slots and spacing here, then land in the NEXT
    /// hop's (or the transport's) malformed_frames accounting.
    bool corrupt_relayed = false;
    /// Sybil flood: forged-origin reports injected per first-sight flood.
    uint32_t sybil_per_flood = 0;
    /// Forged origins start here. Set >= num_nodes so the transport can
    /// reject them by range (spoofed_rejected).
    net::NodeId sybil_origin_base = 0;
  } compromise;
};

class RelayNode {
 public:
  /// Local connectivity oracle ("can I still hear this neighbour?") used
  /// for route repair before forwarding. Physically this is link-layer
  /// beaconing; here it asks the same predicate the network applies at
  /// send time. Empty = no repair, forward blindly like the radio would.
  using LinkProbe = std::function<bool(net::NodeId self, net::NodeId peer)>;

  /// `num_nodes` bounds the physical broadcast loop (node ids
  /// [0, num_nodes) exist on `network`, this node and the verifier
  /// included). The node installs itself as `self`'s datagram handler.
  RelayNode(sim::EventQueue& queue, net::Network& network, net::NodeId self,
            attest::Prover& prover, size_t num_nodes,
            RelayNodeConfig config = {});
  ~RelayNode();

  RelayNode(const RelayNode&) = delete;
  RelayNode& operator=(const RelayNode&) = delete;

  void set_link_probe(LinkProbe probe) { link_probe_ = std::move(probe); }

  struct Stats {
    uint64_t floods_seen = 0;       // flood frames heard (duplicates incl.)
    uint64_t floods_forwarded = 0;  // re-floods sent (first sight, ttl > 0)
    uint64_t requests_served = 0;   // requests answered by the local prover
    uint64_t reports_relayed = 0;   // reports forwarded toward a parent
    uint64_t reports_dropped = 0;   // store-and-forward queue overflow
    uint64_t reports_orphaned = 0;  // reports for floods we never saw/pruned
    uint64_t route_repairs = 0;     // parent swapped to an alternate uplink
    uint64_t scoped_forwarded = 0;  // scoped requests passed down-route
    uint64_t naks_sent = 0;         // scoped hops found their next link down
    uint64_t naks_forwarded = 0;    // NAKs passed up toward the verifier
    uint64_t malformed_frames = 0;  // frames that did not parse (cf.
                                    // NetworkTransport::malformed_frames)
    uint64_t dropped_dark = 0;      // frames/reports lost to a dead battery
    // Hierarchical collection (cluster-head role):
    uint64_t heads_elected = 0;      // floods this node served as head
    uint64_t reports_absorbed = 0;   // child reports combined, not relayed
    uint64_t aggregates_built = 0;   // aggregate frames MAC'd and uplinked
    uint64_t aggregates_relayed = 0; // upstream aggregates forwarded
    /// Aggregate state (held evidence or queued frames) lost to a dead
    /// battery. Kept apart from dropped_dark: these members re-enter
    /// collection through election-time recovery -- their sessions time
    /// out and the retry flood rebuilds the tree around the dark head.
    uint64_t aggregates_dark_purged = 0;
    // Adversarial relay behaviour (zero on honest nodes). Kept apart from
    // reports_dropped (queue overflow) and dropped_dark (dead battery):
    // attack losses must never be conflated with the overlay's own
    // congestion or energy accounting.
    uint64_t dropped_adversarial = 0;    // relayed frames discarded on purpose
    uint64_t corrupted_adversarial = 0;  // relayed frames scribbled
    uint64_t sybil_injected = 0;         // forged-origin reports originated
  };
  const Stats& stats() const { return stats_; }
  net::NodeId self() const { return self_; }

 private:
  struct FloodRoute {
    net::NodeId parent = 0;
    std::vector<net::NodeId> alternates;  // duplicate-arrival uplinks
  };
  struct QueuedReport {
    uint32_t flood = 0;
    Bytes frame;
    bool relayed = false;    // someone else's report (vs served locally)
    bool aggregate = false;  // an AggregateReport (dark-purge accounting)
  };

  void on_datagram(const net::Datagram& dgram);
  void handle_flood(const CollectFlood& flood, net::NodeId from);
  void handle_scoped(ScopedRequest request, net::NodeId from);
  /// Serves one inner attest request via the co-located prover and
  /// schedules the response report (shared by floods and scoped
  /// requests).
  void serve(uint32_t flood_id, uint8_t inner_type, ByteView request);
  /// This node's store-and-forward occupancy as a wire byte (0..255),
  /// as it will be once one more report is queued.
  uint8_t occupancy_byte() const;
  /// Stamps occupancy into the report and queues it for store-and-forward;
  /// drops on overflow.
  void enqueue_report(RelayReport report, bool relayed);
  void enqueue_aggregate(AggregateReport agg, bool relayed);
  /// Shared store-and-forward admission: overflow accounting, occupancy
  /// sampling, queue push, drain arming. `origin` only labels the drop
  /// trace.
  void enqueue_frame(uint32_t flood, net::NodeId origin, Bytes frame,
                     bool relayed, bool aggregate);
  void drain_one();
  /// Takes the head role for this flood (if the prover can judge, i.e.
  /// has measured at least once) and arms the aggregation window.
  void elect_head(uint32_t flood_id, uint32_t depth);
  /// Builds, MACs and uplinks the held aggregate; purges it instead when
  /// the battery died (the members recover through re-election).
  void flush_aggregate(uint32_t flood_id);
  /// The route's current uplink, after any route repair.
  net::NodeId uplink(FloodRoute& route);
  void physical_broadcast(ByteView payload, net::NodeId except);
  void prune_routes();
  /// schedule_after with cancellation-on-destruction bookkeeping.
  void schedule(sim::Duration delay, std::function<void()> fn);

  sim::EventQueue& queue_;
  net::Network& network_;
  net::NodeId self_;
  attest::Prover& prover_;
  size_t num_nodes_;
  RelayNodeConfig config_;
  LinkProbe link_probe_;

  /// First-sight dedup, decoupled from route pruning. Transport flood ids
  /// are monotone, so anything at or below the watermark minus the window
  /// is a duplicate by construction.
  bool first_sight(uint32_t flood);

  std::vector<net::NodeId> scratch_dsts_;  // physical_broadcast reuse
  std::map<uint32_t, FloodRoute> routes_;  // flood id -> uplink state
  std::set<uint32_t> seen_floods_;         // recent ids above watermark
  uint32_t flood_watermark_ = 0;           // highest flood id seen
  std::deque<QueuedReport> queue_out_;
  /// Held hold-and-combine state per flood this node heads. Entries live
  /// from election to flush (or dark purge); bounded like routes_.
  std::map<uint32_t, aggregate::Combiner> aggs_;
  bool draining_ = false;
  std::unordered_set<sim::EventId> pending_events_;
  Stats stats_;

  /// obs instruments, shared across nodes by idempotent registration
  /// (all null without RelayNodeConfig::metrics).
  struct {
    obs::Counter* relay_drops = nullptr;
    obs::Counter* route_repairs = nullptr;
    obs::Counter* requests_served = nullptr;
    obs::Counter* reports_relayed = nullptr;
    obs::Histogram* occupancy = nullptr;
  } inst_;
};

}  // namespace erasmus::overlay
