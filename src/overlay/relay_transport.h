// overlay::RelayTransport -- the attest::Transport over the collection
// overlay.
//
// This is the seam that lets the unified AttestationService (windows,
// timeouts, retries, round policies) drive tree-routed swarm collection
// unchanged: the service sees an ordinary Transport whose peers happen to
// be reachable only over whatever multi-hop path exists right now.
//
//  * broadcast(peers, ...) -- a round dispatch becomes ONE CollectFlood to
//    the whole swarm (flooding is inherently round-wide; size the
//    service's in-flight window to the fleet accordingly). The flood
//    builds its own parent tree as it propagates.
//  * send(peer, ...)       -- a retry or per-device (OD) request becomes a
//    targeted flood: everyone forwards, only `peer` serves. Because each
//    flood rebuilds its tree from the CURRENT topology, a retry IS route
//    re-discovery -- the §6 mobility argument in transport form.
//  * receive               -- RelayReports are unwrapped, deduplicated per
//    flood (dense topologies deliver the same report over several paths)
//    and handed to the service keyed by the origin node, exactly as a
//    direct response would be. Hop counts feed a histogram so scenarios
//    can report how deep collection actually reached.
//
// Malformed frames are counted and dropped here, mirroring
// NetworkTransport::malformed_frames(): the service only ever sees typed
// messages.
#pragma once

#include <map>
#include <set>
#include <vector>

#include "attest/transport.h"
#include "overlay/wire.h"

namespace erasmus::overlay {

struct RelayTransportConfig {
  /// Flood TTL: a flood reaches nodes up to ttl+1 hops out.
  uint8_t ttl = 8;
  /// Must match the relay nodes' forward_spacing; enters the latency
  /// estimate the service sizes timeouts from.
  sim::Duration forward_spacing = sim::Duration::millis(1);
  /// Per-flood dedup/delivery state is kept for this many most-recent
  /// floods. Size it to the floods that can await responses at once: one
  /// round broadcast plus one targeted flood per in-flight retry (a
  /// pruned window turns that flood's responses into stale reports and
  /// forces another retry).
  size_t flood_memory = 64;
};

class RelayTransport : public attest::Transport {
 public:
  /// Attaches to `self` (already registered on `network`); node ids
  /// [0, num_nodes) exist, relay nodes and this endpoint included.
  RelayTransport(net::Network& network, net::NodeId self, size_t num_nodes,
                 RelayTransportConfig config = {});
  ~RelayTransport() override;

  void send(net::NodeId peer, attest::MsgType type, ByteView body) override;
  void broadcast(const std::vector<net::NodeId>& peers, attest::MsgType type,
                 ByteView body) override;
  void set_receiver(Receiver receiver) override;
  /// Worst-case one-way estimate: per-hop network latency plus relay
  /// serialization, times the flood depth bound.
  sim::Duration latency() const override;

  struct Stats {
    uint64_t floods_sent = 0;      // round broadcasts
    uint64_t targeted_floods = 0;  // per-peer sends (retries, OD)
    uint64_t reports_received = 0;
    uint64_t duplicate_reports = 0;  // same (flood, origin) via another path
    uint64_t stale_reports = 0;      // flood id outside the dedup window
    uint64_t malformed_frames = 0;
  };
  const Stats& stats() const { return stats_; }

  /// Reports received by relay count: [0] arrived directly, [h] crossed h
  /// relays. Grown on demand.
  const std::vector<uint64_t>& hop_histogram() const { return hops_; }

  net::NodeId self() const { return self_; }

 private:
  void on_datagram(const net::Datagram& dgram);
  void launch_flood(net::NodeId target, attest::MsgType type, ByteView body);

  net::Network& network_;
  net::NodeId self_;
  size_t num_nodes_;
  RelayTransportConfig config_;
  Receiver receiver_;

  uint32_t next_flood_ = 1;
  std::vector<net::NodeId> scratch_dsts_;  // flood-launch reuse
  std::map<uint32_t, std::set<net::NodeId>> delivered_;  // flood -> origins
  std::vector<uint64_t> hops_;
  Stats stats_;
};

}  // namespace erasmus::overlay
