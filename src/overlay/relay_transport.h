// overlay::RelayTransport -- the attest::Transport over the collection
// overlay.
//
// This is the seam that lets the unified AttestationService (windows,
// timeouts, retries, round policies) drive tree-routed swarm collection
// unchanged: the service sees an ordinary Transport whose peers happen to
// be reachable only over whatever multi-hop path exists right now.
//
//  * broadcast(peers, ...) -- a dispatch batch becomes ONE CollectFlood
//    scoped to those peers (everyone forwards, only batch members serve),
//    or a {kEveryone} flood when the batch covers the swarm. The flood
//    builds its own parent tree as it propagates, and its report volume
//    is bounded by the service's dispatch window -- the knob the AIMD
//    controller turns.
//  * send(peer, ...)       -- a retry or per-device (OD) request. With
//    scoped retries on and a fresh cached route -- learned from the path
//    record of ANY report that crossed the peer, its own or one it
//    relayed -- this is a source-routed unicast down that parent chain;
//    otherwise a targeted flood, whose fresh id rebuilds the tree from
//    the CURRENT topology -- the §6 mobility argument in transport form.
//    A ScopedNak, a stale or an already-burned route all fall back to
//    the flood path.
//  * receive               -- RelayReports are unwrapped, deduplicated per
//    flood (dense topologies deliver the same report over several paths)
//    and handed to the service keyed by the origin node, exactly as a
//    direct response would be. Hop counts feed a histogram, the path
//    record refreshes the route cache, and the piggybacked relay-queue
//    occupancy feeds take_congestion() so the service can damp its
//    window when relays saturate.
//
// Malformed frames are counted and dropped here, mirroring
// NetworkTransport::malformed_frames(): the service only ever sees typed
// messages.
#pragma once

#include <map>
#include <set>
#include <vector>

#include "aggregate/frame.h"
#include "attest/transport.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "overlay/wire.h"

namespace erasmus::overlay {

struct RelayTransportConfig {
  /// Flood TTL: a flood reaches nodes up to ttl+1 hops out.
  uint8_t ttl = 8;
  /// Must match the relay nodes' forward_spacing; enters the latency
  /// estimate the service sizes timeouts from.
  sim::Duration forward_spacing = sim::Duration::millis(1);
  /// Per-flood dedup/delivery state is kept for this many most-recent
  /// floods. Size it to the floods that can await responses at once: one
  /// round broadcast plus one targeted flood per in-flight retry (a
  /// pruned window turns that flood's responses into stale reports and
  /// forces another retry).
  size_t flood_memory = 64;
  /// Retry a device over its last report's recorded path (a source-routed
  /// unicast) instead of re-flooding the swarm, while that route is
  /// fresh. Off: every retry is a full targeted flood (the pre-scoped
  /// behaviour).
  bool scoped_retries = false;
  /// How long a recorded path stays trustworthy. Size to mobility: at
  /// vehicle speeds a multi-hop path decays in tens of seconds.
  sim::Duration route_ttl = sim::Duration::seconds(30);
  /// Flight recorder for flood/scoped/report lifecycle events (category
  /// kOverlay). Not owned; nullptr = no tracing.
  obs::TraceRecorder* trace = nullptr;
  /// Metrics registry; the transport registers its packet counters plus the
  /// hop-count histogram under subsystem "overlay". Not owned; nullptr = off.
  obs::Registry* metrics = nullptr;
  /// Hierarchical collection: mark multi-member round/retry-wave floods
  /// aggregate-eligible (kFloodAggregate), so elected heads absorb their
  /// reports. Single-target sends -- retries and demand fetches -- are
  /// never eligible: their whole point is raw per-device evidence.
  bool aggregate = false;
};

class RelayTransport : public attest::Transport {
 public:
  /// Attaches to `self` (already registered on `network`); node ids
  /// [0, num_nodes) exist, relay nodes and this endpoint included.
  RelayTransport(net::Network& network, net::NodeId self, size_t num_nodes,
                 RelayTransportConfig config = {});
  ~RelayTransport() override;

  void send(net::NodeId peer, attest::MsgType type, ByteView body) override;
  void broadcast(const std::vector<net::NodeId>& peers, attest::MsgType type,
                 ByteView body) override;
  void set_receiver(Receiver receiver) override;
  /// Delivery channel for cluster aggregates: called once per accepted
  /// (deduplicated, well-formed) AggregateFrame with the relay count it
  /// crossed. Authentication is the caller's job -- the transport has no
  /// key directory.
  using AggregateReceiver =
      std::function<void(const aggregate::AggregateFrame& frame,
                         uint8_t hops)>;
  void set_aggregate_receiver(AggregateReceiver receiver) {
    aggregate_receiver_ = std::move(receiver);
  }
  /// Worst-case one-way estimate: per-hop network latency plus relay
  /// serialization, times the flood depth bound.
  sim::Duration latency() const override;
  /// Worst relay-queue occupancy (0..1) reported by any report since the
  /// last call; drains on read.
  double take_congestion() override;
  /// One broadcast = one field-wide flood regardless of batch size: make
  /// the service coalesce dispatch instead of flooding per free slot.
  bool coalesced_dispatch() const override { return true; }
  /// Marks the next broadcast as a retry wave so its scoped/fallback
  /// split is accounted in the retry-economy stats.
  void hint_retry_wave() override { next_broadcast_is_retry_ = true; }

  struct Stats {
    uint64_t floods_sent = 0;       // batch/round broadcasts
    uint64_t targeted_floods = 0;   // re-floods carrying retries (per-peer
                                    // sends and coalesced retry waves)
    uint64_t scoped_sent = 0;       // retries unicast down a cached route
    uint64_t scoped_fallbacks = 0;  // retried devices with no usable route
    uint64_t naks_received = 0;     // broken-route notices (route evicted)
    uint64_t reports_received = 0;
    uint64_t duplicate_reports = 0;  // same (flood, origin) via another path
    uint64_t stale_reports = 0;      // flood id outside the dedup window
    uint64_t malformed_frames = 0;
    /// Reports whose claimed origin is not a node that exists on this
    /// network (Sybil / spoofed-origin injection). Rejected before any
    /// route-cache or congestion state is touched, and counted apart
    /// from malformed_frames: the frame parsed fine -- its identity lied.
    uint64_t spoofed_rejected = 0;
    // Hierarchical collection:
    uint64_t aggregates_received = 0;   // accepted aggregate frames
    uint64_t duplicate_aggregates = 0;  // same (flood, head) again
    uint64_t aggregate_members = 0;     // members across accepted frames
    uint64_t aggregate_wire_bytes = 0;  // accepted frame payload bytes
    uint64_t aggregate_raw_bytes = 0;   // raw evidence those frames absorbed
  };
  const Stats& stats() const { return stats_; }

  /// Reports received by relay count: [0] arrived directly, [h] crossed h
  /// relays. Grown on demand.
  const std::vector<uint64_t>& hop_histogram() const { return hops_; }

  /// True when a scoped retry for `peer` would take the unicast path
  /// right now (fresh, unburned route cached). Exposed for tests.
  bool has_fresh_route(net::NodeId peer) const;

  net::NodeId self() const { return self_; }

 private:
  struct CachedRoute {
    std::vector<net::NodeId> route;  // verifier-side first, target last
    sim::Time learned_at;
    /// One scoped attempt per learning: a second retry without a fresh
    /// report in between means the unicast failed silently -- re-flood.
    bool used = false;
    /// Slot occupancy: the route table is a flat per-node array, so an
    /// entry exists for every node; only valid ones were ever learned.
    bool valid = false;
  };

  void on_datagram(const net::Datagram& dgram);
  /// Registers the transport's obs instruments (no-op without a registry).
  void register_instruments();
  /// kOverlay category instant (no-op when tracing is off/filtered).
  void trace_overlay(const char* name, obs::TraceArgs args);
  /// Opens the per-flood dedup window for a fresh id, evicting the
  /// oldest beyond flood_memory (shared by floods and scoped requests).
  void register_flood(uint32_t flood);
  void launch_flood(std::vector<net::NodeId> targets, attest::MsgType type,
                    ByteView body, bool aggregate_eligible = false);
  void handle_aggregate(ByteView body);
  void launch_scoped(CachedRoute& route, attest::MsgType type, ByteView body);

  net::Network& network_;
  net::NodeId self_;
  size_t num_nodes_;
  RelayTransportConfig config_;
  Receiver receiver_;
  AggregateReceiver aggregate_receiver_;

  uint32_t next_flood_ = 1;
  std::vector<net::NodeId> scratch_dsts_;  // flood-launch reuse
  std::map<uint32_t, std::set<net::NodeId>> delivered_;  // flood -> origins
  /// Aggregate dedup, keyed by head but kept apart from delivered_: a
  /// head both BUILDS an aggregate and sends its own raw report up the
  /// tree, so one key space would let whichever arrives first shadow the
  /// other. Staleness still follows delivered_'s flood window.
  std::map<uint32_t, std::set<net::NodeId>> agg_delivered_;
  /// Flat per-node route table (indexed by origin id). Node ids are dense
  /// [0, num_nodes), so a vector beats a hash map here: route refreshes
  /// touch every prefix of every report path, and the flat layout keeps
  /// those stores on contiguous slots with no rehash churn.
  std::vector<CachedRoute> routes_;
  std::vector<uint64_t> hops_;
  double pending_congestion_ = 0.0;
  bool next_broadcast_is_retry_ = false;
  Stats stats_;

  /// obs instruments (all null without RelayTransportConfig::metrics).
  struct {
    obs::Counter* floods = nullptr;
    obs::Counter* targeted_floods = nullptr;
    obs::Counter* scoped_sent = nullptr;
    obs::Counter* scoped_fallbacks = nullptr;
    obs::Counter* naks = nullptr;
    obs::Counter* reports = nullptr;
    obs::Counter* duplicate_reports = nullptr;
    obs::Counter* stale_reports = nullptr;
    obs::Counter* spoofed_rejected = nullptr;
    obs::Histogram* hops = nullptr;
  } inst_;
};

}  // namespace erasmus::overlay
