#include "overlay/relay_node.h"

#include <algorithm>
#include <utility>

#include "attest/measurement.h"
#include "attest/protocol.h"
#include "crypto/mac.h"

namespace erasmus::overlay {

namespace {
/// Alternate-uplink memory per flood: enough for route repair in dense
/// neighbourhoods without unbounded growth in them.
constexpr size_t kMaxAlternates = 4;
}  // namespace

RelayNode::RelayNode(sim::EventQueue& queue, net::Network& network,
                     net::NodeId self, attest::Prover& prover,
                     size_t num_nodes, RelayNodeConfig config)
    : queue_(queue), network_(network), self_(self), prover_(prover),
      num_nodes_(num_nodes), config_(config) {
  network_.set_handler(self_,
                       [this](const net::Datagram& d) { on_datagram(d); });
  if (obs::Registry* reg = config_.metrics) {
    inst_.relay_drops = &reg->counter("overlay", "relay_drops");
    inst_.route_repairs = &reg->counter("overlay", "route_repairs");
    inst_.requests_served = &reg->counter("overlay", "requests_served");
    inst_.reports_relayed = &reg->counter("overlay", "reports_relayed");
    // Store-and-forward occupancy (0..1) sampled as each report enters a
    // relay queue: the congestion signal the AIMD window damps on.
    inst_.occupancy =
        &reg->histogram("overlay", "relay_queue_occupancy",
                        {0.1, 0.25, 0.5, 0.75, 0.9, 1.0});
  }
}

RelayNode::~RelayNode() {
  // Detach so in-flight datagrams cannot fire into a freed node; pending
  // serve/drain events are cancelled for the same reason.
  network_.set_handler(self_, {});
  for (const sim::EventId id : pending_events_) queue_.cancel(id);
}

void RelayNode::schedule(sim::Duration delay, std::function<void()> fn) {
  auto id = std::make_shared<sim::EventId>();
  *id = queue_.schedule_after(delay, [this, id, fn = std::move(fn)] {
    pending_events_.erase(*id);
    fn();
  });
  pending_events_.insert(*id);
}

void RelayNode::physical_broadcast(ByteView payload, net::NodeId except) {
  // Offer the datagram to every node; the network's link filter delivers
  // only to nodes in radio range at this instant (§6 semantics). One
  // broadcast call so the payload is only copied per actual delivery.
  scratch_dsts_.clear();
  scratch_dsts_.reserve(num_nodes_);
  for (net::NodeId node = 0; node < num_nodes_; ++node) {
    if (node == self_ || node == except) continue;
    scratch_dsts_.push_back(node);
  }
  network_.broadcast(self_, scratch_dsts_, payload);
}

void RelayNode::on_datagram(const net::Datagram& dgram) {
  if (config_.meter && config_.meter->dark()) {
    // Battery exhausted: the radio still drew the rx joules (charged by the
    // network's energy tap before delivery), but nobody is home to serve,
    // relay, or re-flood. The frame dies here.
    ++stats_.dropped_dark;
    return;
  }
  const auto framed = unframe_relay(dgram.payload);
  if (!framed) {
    ++stats_.malformed_frames;
    return;
  }
  switch (framed->first) {
    case RelayMsg::kCollectFlood: {
      const auto flood = CollectFlood::deserialize(framed->second);
      if (!flood) {
        ++stats_.malformed_frames;
        return;
      }
      handle_flood(*flood, dgram.src);
      return;
    }
    case RelayMsg::kRelayReport: {
      auto report = RelayReport::deserialize(framed->second);
      if (!report) {
        ++stats_.malformed_frames;
        return;
      }
      // Pure relay: never parse the inner response. Unknown flood (never
      // heard it, or route state already pruned) -> nowhere to send it.
      const auto it = routes_.find(report->flood);
      if (it == routes_.end()) {
        ++stats_.reports_orphaned;
        return;
      }
      // A compromised relay discards what it was trusted to carry. Placed
      // after the route lookup so only frames this node would actually
      // have relayed count as attack losses.
      if (config_.compromise.drop_relayed) {
        ++stats_.dropped_adversarial;
        if (obs::TraceRecorder* trace = config_.trace;
            trace && trace->enabled(obs::Subsystem::kOverlay)) {
          trace->instant(obs::Subsystem::kOverlay, queue_.now(),
                         "adversarial_drop",
                         {{"node", static_cast<uint64_t>(self_)},
                          {"flood", static_cast<uint64_t>(report->flood)},
                          {"origin", static_cast<uint64_t>(report->origin)}});
        }
        return;
      }
      // Head role: while the aggregation window is open, child reports
      // stop here and fold into the cluster aggregate instead of climbing
      // on. Reports arriving after the flush relay raw as usual.
      const auto agg = aggs_.find(report->flood);
      if (agg != aggs_.end()) {
        agg->second.absorb(report->origin, report->response);
        ++stats_.reports_absorbed;
        if (agg->second.members() >= config_.aggregation.max_members) {
          flush_aggregate(report->flood);
        }
        return;
      }
      ++report->hops;
      report->path.push_back(self_);
      if (config_.compromise.corrupt_relayed) {
        // Scribble instead of drop: the mangled frame still burns this
        // node's queue slot and forward spacing, then fails to parse at
        // the next hop (its malformed_frames). Truncating the tail keeps
        // the relay framing header valid but breaks the inner
        // deserialize, which insists on consuming the frame exactly.
        ++stats_.corrupted_adversarial;
        if (obs::TraceRecorder* trace = config_.trace;
            trace && trace->enabled(obs::Subsystem::kOverlay)) {
          trace->instant(obs::Subsystem::kOverlay, queue_.now(),
                         "adversarial_corrupt",
                         {{"node", static_cast<uint64_t>(self_)},
                          {"flood", static_cast<uint64_t>(report->flood)},
                          {"origin", static_cast<uint64_t>(report->origin)}});
        }
        Bytes frame = frame_relay(RelayMsg::kRelayReport, report->serialize());
        frame.resize(frame.size() - frame.size() / 3);
        enqueue_frame(report->flood, report->origin, std::move(frame),
                      /*relayed=*/true, /*aggregate=*/false);
        return;
      }
      enqueue_report(std::move(*report), /*relayed=*/true);
      return;
    }
    case RelayMsg::kAggregateReport: {
      auto agg = AggregateReport::deserialize(framed->second);
      if (!agg) {
        ++stats_.malformed_frames;
        return;
      }
      // Aggregates relay exactly like reports -- opaque payload, hop and
      // path bookkeeping, queue piggyback. No re-aggregation: a deeper
      // head's aggregate passes a shallower head unchanged.
      const auto it = routes_.find(agg->flood);
      if (it == routes_.end()) {
        ++stats_.reports_orphaned;
        return;
      }
      if (config_.compromise.drop_relayed) {
        ++stats_.dropped_adversarial;
        if (obs::TraceRecorder* trace = config_.trace;
            trace && trace->enabled(obs::Subsystem::kOverlay)) {
          trace->instant(obs::Subsystem::kOverlay, queue_.now(),
                         "adversarial_drop",
                         {{"node", static_cast<uint64_t>(self_)},
                          {"flood", static_cast<uint64_t>(agg->flood)},
                          {"origin", static_cast<uint64_t>(agg->head)}});
        }
        return;
      }
      ++agg->hops;
      agg->path.push_back(self_);
      if (config_.compromise.corrupt_relayed) {
        ++stats_.corrupted_adversarial;
        if (obs::TraceRecorder* trace = config_.trace;
            trace && trace->enabled(obs::Subsystem::kOverlay)) {
          trace->instant(obs::Subsystem::kOverlay, queue_.now(),
                         "adversarial_corrupt",
                         {{"node", static_cast<uint64_t>(self_)},
                          {"flood", static_cast<uint64_t>(agg->flood)},
                          {"origin", static_cast<uint64_t>(agg->head)}});
        }
        Bytes frame =
            frame_relay(RelayMsg::kAggregateReport, agg->serialize());
        frame.resize(frame.size() - frame.size() / 3);
        enqueue_frame(agg->flood, agg->head, std::move(frame),
                      /*relayed=*/true, /*aggregate=*/true);
        return;
      }
      enqueue_aggregate(std::move(*agg), /*relayed=*/true);
      return;
    }
    case RelayMsg::kScopedRequest: {
      auto request = ScopedRequest::deserialize(framed->second);
      if (!request) {
        ++stats_.malformed_frames;
        return;
      }
      handle_scoped(std::move(*request), dgram.src);
      return;
    }
    case RelayMsg::kScopedNak: {
      const auto nak = ScopedNak::deserialize(framed->second);
      if (!nak) {
        ++stats_.malformed_frames;
        return;
      }
      // Climb the same parent chain the scoped request laid down; a
      // pruned route leaves the NAK with nowhere to go (the verifier's
      // session timeout still recovers).
      const auto it = routes_.find(nak->flood);
      if (it == routes_.end()) {
        ++stats_.reports_orphaned;
        return;
      }
      ++stats_.naks_forwarded;
      network_.send(self_, uplink(it->second),
                    frame_relay(RelayMsg::kScopedNak, nak->serialize()));
      return;
    }
  }
}

void RelayNode::handle_scoped(ScopedRequest request, net::NodeId from) {
  // Record the sender as this flood's parent BEFORE anything else: the
  // response report (or a NAK from further down) returns over exactly the
  // hops the request traversed.
  routes_[request.flood] = FloodRoute{from, {}};
  prune_routes();
  first_sight(request.flood);  // keep the dedup watermark monotone

  if (request.route.empty()) {
    serve(request.flood, request.inner_type, request.request);
    return;
  }
  const net::NodeId next = request.route.front();
  if (link_probe_ && !link_probe_(self_, next)) {
    // The cached route broke at this hop. Tell the verifier (so the next
    // retry re-floods) instead of transmitting into the void.
    ++stats_.naks_sent;
    const ScopedNak nak{request.flood, request.route.back()};
    network_.send(self_, from,
                  frame_relay(RelayMsg::kScopedNak, nak.serialize()));
    return;
  }
  request.route.erase(request.route.begin());
  ++stats_.scoped_forwarded;
  network_.send(self_, next,
                frame_relay(RelayMsg::kScopedRequest, request.serialize()));
}

bool RelayNode::first_sight(uint32_t flood) {
  // Dedup window: transport flood ids are monotone, so once the watermark
  // has moved this far past an id, any copy of it still circulating is a
  // duplicate. MUST be wider than route memory: if a pruned route were
  // mistaken for first sight, its echoes would re-flood exponentially.
  constexpr uint32_t kWindow = 1u << 16;
  if (flood + kWindow < flood_watermark_) return false;  // ancient echo
  if (!seen_floods_.insert(flood).second) return false;
  if (flood > flood_watermark_) {
    flood_watermark_ = flood;
    while (!seen_floods_.empty() &&
           *seen_floods_.begin() + kWindow < flood_watermark_) {
      seen_floods_.erase(seen_floods_.begin());
    }
  }
  return true;
}

void RelayNode::handle_flood(const CollectFlood& flood, net::NodeId from) {
  ++stats_.floods_seen;
  if (!first_sight(flood.flood)) {
    // Duplicate arrival: remember the sender as an alternate uplink for
    // route repair; the flood was already served and forwarded.
    const auto it = routes_.find(flood.flood);
    if (it == routes_.end()) return;  // route state already pruned
    FloodRoute& route = it->second;
    if (from != route.parent &&
        route.alternates.size() < kMaxAlternates &&
        std::find(route.alternates.begin(), route.alternates.end(), from) ==
            route.alternates.end()) {
      route.alternates.push_back(from);
    }
    return;
  }

  routes_[flood.flood] = FloodRoute{from, {}};
  prune_routes();

  if (config_.compromise.sybil_per_flood > 0) {
    // Sybil flood: answer each first-sight collection flood with forged
    // reports from origins that do not exist on the network. They travel
    // the honest uplink path, consuming queue slots and spacing all the
    // way up, until the verifier's transport rejects the out-of-range
    // origins (spoofed_rejected). The bogus responses carry no valid MAC
    // either -- origin-range rejection just catches them cheaper.
    if (obs::TraceRecorder* trace = config_.trace;
        trace && trace->enabled(obs::Subsystem::kOverlay)) {
      trace->instant(
          obs::Subsystem::kOverlay, queue_.now(), "sybil_inject",
          {{"node", static_cast<uint64_t>(self_)},
           {"flood", static_cast<uint64_t>(flood.flood)},
           {"count",
            static_cast<uint64_t>(config_.compromise.sybil_per_flood)}});
    }
    for (uint32_t j = 0; j < config_.compromise.sybil_per_flood; ++j) {
      RelayReport forged;
      forged.flood = flood.flood;
      forged.origin = config_.compromise.sybil_origin_base + j;
      forged.hops = 0;
      forged.inner_type =
          static_cast<uint8_t>(attest::MsgType::kCollectResponse);
      forged.path.push_back(self_);
      forged.response = Bytes(24, 0xAB);
      ++stats_.sybil_injected;
      enqueue_report(std::move(forged), /*relayed=*/false);
    }
  }

  // First-sight depth: the frame carries the sender's re-broadcast count,
  // so this node sits one deeper. Election must precede serve(): with
  // zero processing time the node's own report would otherwise race the
  // window open.
  const uint32_t depth = std::min<uint32_t>(flood.depth, 254) + 1;
  if (config_.aggregation.enabled && (flood.flags & kFloodAggregate) != 0 &&
      aggregate::is_head(config_.aggregation.election, self_, depth)) {
    elect_head(flood.flood, depth);
  }

  if (flood.serves(self_)) {
    serve(flood.flood, flood.inner_type, flood.request);
  }

  if (flood.ttl > 0) {
    CollectFlood next = flood;
    next.ttl = flood.ttl - 1;
    next.depth = static_cast<uint8_t>(std::min<uint32_t>(depth, 255));
    ++stats_.floods_forwarded;
    physical_broadcast(frame_relay(RelayMsg::kCollectFlood, next.serialize()),
                       from);
  }
}

void RelayNode::elect_head(uint32_t flood_id, uint32_t depth) {
  if (aggs_.count(flood_id) != 0) return;
  // The healthy judgment compares children against this node's own latest
  // digest; a prover that has never measured has no yardstick and
  // declines the role (its cluster's reports simply relay raw).
  const auto latest = prover_.store().get(prover_.latest_index());
  if (!prover_.any_measurement_taken() || !latest) return;
  ++stats_.heads_elected;
  if (obs::TraceRecorder* trace = config_.trace;
      trace && trace->enabled(obs::Subsystem::kOverlay)) {
    trace->instant(obs::Subsystem::kOverlay, queue_.now(), "head_elected",
                   {{"node", static_cast<uint64_t>(self_)},
                    {"flood", static_cast<uint64_t>(flood_id)},
                    {"depth", static_cast<uint64_t>(depth)}});
  }
  aggs_.emplace(flood_id,
                aggregate::Combiner(attest::hash_for(prover_.config().algo),
                                    latest->digest));
  while (aggs_.size() > config_.flood_memory) aggs_.erase(aggs_.begin());
  schedule(config_.aggregation.window,
           [this, flood_id] { flush_aggregate(flood_id); });
}

void RelayNode::flush_aggregate(uint32_t flood_id) {
  const auto it = aggs_.find(flood_id);
  if (it == aggs_.end()) return;
  const aggregate::Combiner combiner = std::move(it->second);
  aggs_.erase(it);
  if (combiner.members() == 0) return;
  if (config_.meter && config_.meter->dark()) {
    // The battery died while the evidence was held: the aggregate never
    // existed on the wire. Counted apart from dropped_dark -- these
    // members re-enter collection via election-time recovery (session
    // timeouts re-flood, and the new tree routes around this node).
    ++stats_.aggregates_dark_purged;
    return;
  }
  // Combine cost: the head pays CPU for hashing the absorbed evidence and
  // one MAC. Charging may itself brown the head out mid-combine.
  if (config_.aggregation.combine_charge) {
    config_.aggregation.combine_charge(combiner.raw_bytes(), queue_.now());
    if (config_.meter && config_.meter->dark()) {
      ++stats_.aggregates_dark_purged;
      return;
    }
  }
  aggregate::AggregateFrame frame = combiner.build(flood_id, self_);
  prover_.arch().run_protected([&](hw::SecurityArch::ProtectedContext& ctx) {
    frame.mac = crypto::Mac::compute(prover_.config().algo, ctx.key(),
                                     aggregate::aggregate_mac_input(frame));
  });
  ++stats_.aggregates_built;
  AggregateReport env;
  env.flood = flood_id;
  env.head = self_;
  env.path.push_back(self_);
  env.payload = frame.serialize();
  if (obs::TraceRecorder* trace = config_.trace;
      trace && trace->enabled(obs::Subsystem::kOverlay)) {
    trace->instant(obs::Subsystem::kOverlay, queue_.now(), "aggregate_built",
                   {{"node", static_cast<uint64_t>(self_)},
                    {"flood", static_cast<uint64_t>(flood_id)},
                    {"members", static_cast<uint64_t>(frame.members.size())},
                    {"raw_bytes", static_cast<uint64_t>(frame.raw_bytes)},
                    {"wire_bytes", static_cast<uint64_t>(env.payload.size())}});
  }
  enqueue_aggregate(std::move(env), /*relayed=*/false);
}

void RelayNode::serve(uint32_t flood_id, uint8_t inner_type,
                      ByteView request) {
  // Serve from the co-located prover: a buffer read plus (for OD) one MAC
  // check -- collection itself triggers no measurement (§3, §6).
  Bytes response;
  uint8_t response_type = 0;
  sim::Duration processing;
  switch (static_cast<attest::MsgType>(inner_type)) {
    case attest::MsgType::kCollectRequest: {
      const auto req = attest::CollectRequest::deserialize(request);
      if (!req) {
        ++stats_.malformed_frames;
        return;
      }
      const auto res = prover_.handle_collect(*req);
      response = res.response.serialize();
      response_type = static_cast<uint8_t>(attest::MsgType::kCollectResponse);
      processing = res.processing;
      break;
    }
    case attest::MsgType::kOdRequest: {
      const auto req = attest::OdRequest::deserialize(request);
      if (!req) {
        ++stats_.malformed_frames;
        return;
      }
      const auto res = prover_.handle_od(*req);
      if (!res.response) return;  // auth/freshness reject: silent (anti-DoS)
      response = res.response->serialize();
      response_type = static_cast<uint8_t>(attest::MsgType::kOdResponse);
      processing = res.processing;
      break;
    }
    default:
      return;  // not a request; floods never carry responses
  }
  ++stats_.requests_served;
  if (inst_.requests_served) inst_.requests_served->add();

  RelayReport report;
  report.flood = flood_id;
  report.origin = self_;
  report.hops = 0;
  report.inner_type = response_type;
  report.path.push_back(self_);
  report.response = std::move(response);
  schedule(processing, [this, report = std::move(report)]() mutable {
    enqueue_report(std::move(report), /*relayed=*/false);
  });
}

uint8_t RelayNode::occupancy_byte() const {
  if (config_.queue_depth == 0) return 255;
  const size_t occupied =
      std::min(queue_out_.size() + 1, config_.queue_depth);
  return static_cast<uint8_t>(occupied * 255 / config_.queue_depth);
}

void RelayNode::enqueue_frame(uint32_t flood, net::NodeId origin, Bytes frame,
                              bool relayed, bool aggregate) {
  if (queue_out_.size() >= config_.queue_depth) {
    ++stats_.reports_dropped;
    if (inst_.relay_drops) inst_.relay_drops->add();
    if (obs::TraceRecorder* trace = config_.trace;
        trace && trace->enabled(obs::Subsystem::kOverlay)) {
      trace->instant(obs::Subsystem::kOverlay, queue_.now(), "relay_drop",
                     {{"node", static_cast<uint64_t>(self_)},
                      {"flood", static_cast<uint64_t>(flood)},
                      {"origin", static_cast<uint64_t>(origin)}});
    }
    return;
  }
  if (inst_.occupancy) {
    inst_.occupancy->observe(static_cast<double>(occupancy_byte()) / 255.0);
  }
  queue_out_.push_back({flood, std::move(frame), relayed, aggregate});
  if (!draining_) {
    draining_ = true;
    schedule(config_.forward_spacing, [this] { drain_one(); });
  }
}

void RelayNode::enqueue_report(RelayReport report, bool relayed) {
  // Congestion piggyback: the report remembers the most saturated queue
  // it crossed, measured as this queue will stand once it joins it.
  report.queue = std::max(report.queue, occupancy_byte());
  enqueue_frame(report.flood, report.origin,
                frame_relay(RelayMsg::kRelayReport, report.serialize()),
                relayed, /*aggregate=*/false);
}

void RelayNode::enqueue_aggregate(AggregateReport agg, bool relayed) {
  agg.queue = std::max(agg.queue, occupancy_byte());
  enqueue_frame(agg.flood, agg.head,
                frame_relay(RelayMsg::kAggregateReport, agg.serialize()),
                relayed, /*aggregate=*/true);
}

void RelayNode::drain_one() {
  if (config_.meter && config_.meter->dark()) {
    // Went dark with frames still queued: the store-and-forward buffer
    // dies with the node. Aggregates (queued or still held in an open
    // window) are accounted apart from plain reports -- their members
    // re-enter collection via election-time recovery, not silently.
    for (const QueuedReport& item : queue_out_) {
      if (item.aggregate) {
        ++stats_.aggregates_dark_purged;
      } else {
        ++stats_.dropped_dark;
      }
    }
    for (const auto& [flood_id, combiner] : aggs_) {
      if (combiner.members() > 0) ++stats_.aggregates_dark_purged;
    }
    aggs_.clear();
    queue_out_.clear();
    draining_ = false;
    return;
  }
  if (queue_out_.empty()) {
    draining_ = false;
    return;
  }
  QueuedReport item = std::move(queue_out_.front());
  queue_out_.pop_front();

  const auto it = routes_.find(item.flood);
  if (it == routes_.end()) {
    // Route state pruned while the report sat in the queue.
    ++stats_.reports_orphaned;
  } else {
    if (item.relayed) {
      if (item.aggregate) {
        ++stats_.aggregates_relayed;
      } else {
        ++stats_.reports_relayed;
      }
      if (inst_.reports_relayed) inst_.reports_relayed->add();
    }
    network_.send(self_, uplink(it->second), std::move(item.frame));
  }

  if (queue_out_.empty()) {
    draining_ = false;
  } else {
    schedule(config_.forward_spacing, [this] { drain_one(); });
  }
}

net::NodeId RelayNode::uplink(FloodRoute& route) {
  // Mobility-aware route repair: if the parent has moved out of range
  // since the flood passed, swap in a still-connected alternate (a
  // neighbour the same flood also arrived from). Without a probe, or with
  // no live alternate, send toward the recorded parent and let the radio
  // drop it -- datagram networks do not report loss to the sender.
  if (!link_probe_ || link_probe_(self_, route.parent)) return route.parent;
  for (net::NodeId alt : route.alternates) {
    if (link_probe_(self_, alt)) {
      ++stats_.route_repairs;
      if (inst_.route_repairs) inst_.route_repairs->add();
      if (obs::TraceRecorder* trace = config_.trace;
          trace && trace->enabled(obs::Subsystem::kOverlay)) {
        trace->instant(obs::Subsystem::kOverlay, queue_.now(), "route_repair",
                       {{"node", static_cast<uint64_t>(self_)},
                        {"new_uplink", static_cast<uint64_t>(alt)}});
      }
      route.parent = alt;
      return alt;
    }
  }
  return route.parent;
}

void RelayNode::prune_routes() {
  while (routes_.size() > config_.flood_memory) {
    routes_.erase(routes_.begin());  // oldest flood id
  }
}

}  // namespace erasmus::overlay
