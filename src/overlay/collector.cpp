#include "overlay/collector.h"

#include <algorithm>

namespace erasmus::overlay {

namespace {

RelayTransportConfig transport_config(const RelayCollectorConfig& config,
                                      size_t fleet) {
  RelayTransportConfig tc = config.transport;
  tc.flood_memory = std::max(tc.flood_memory, flood_memory_for(fleet));
  return tc;
}

attest::ServiceConfig service_config(const RelayCollectorConfig& config,
                                     size_t fleet) {
  attest::ServiceConfig sc;
  sc.k = 1;  // per-round k is passed through collect_now()
  sc.response_timeout = config.response_timeout;
  sc.max_retries = config.max_retries;
  // One flood covers the whole swarm, so the dispatch window must too:
  // throttling would just delay sessions past reports that already
  // arrived.
  sc.window.fixed = fleet == 0 ? 1 : fleet;
  sc.keep_audit = false;  // round results are judged per round, not logged
  return sc;
}

}  // namespace

RelayCollector::RelayCollector(sim::EventQueue& queue, net::Network& network,
                               net::NodeId self,
                               attest::DeviceDirectory& directory,
                               size_t num_nodes, RelayCollectorConfig config)
    : queue_(queue), directory_(directory),
      transport_(network, self, num_nodes,
                 transport_config(config, directory.size())),
      service_(queue, transport_, directory,
               service_config(config, directory.size())) {
  service_.set_observer([this](
      const attest::AttestationService::SessionOutcome& outcome) {
    if (outcome.device >= statuses_.size()) return;
    swarm::DeviceStatus& status = statuses_[outcome.device];
    if (!outcome.reachable) return;  // retry budget exhausted: unreachable
    status.attested = true;
    status.healthy = outcome.report.device_trustworthy() &&
                     outcome.report.freshness.has_value();
    ++reports_;
    last_report_at_ = outcome.at;
  });
}

RelayCollector::RoundResult RelayCollector::run_round(uint32_t k,
                                                      sim::Duration deadline) {
  statuses_.assign(directory_.size(), {});
  for (attest::DeviceId id = 0; id < directory_.size(); ++id) {
    statuses_[id].device = id;
  }
  reports_ = 0;
  round_start_ = queue_.now();
  last_report_at_ = round_start_;

  std::vector<attest::DeviceId> all(directory_.size());
  for (attest::DeviceId id = 0; id < directory_.size(); ++id) all[id] = id;
  service_.collect_now(all, k);
  queue_.run_until(round_start_ + deadline);
  // Deadline semantics: whatever is still in flight did not make this
  // round. stop() aborts those sessions; their late reports surface as
  // stale/stray datagrams and never disturb the next round.
  if (service_.round_in_progress()) service_.stop();

  RoundResult result;
  result.statuses = std::move(statuses_);
  statuses_.clear();
  result.reports_received = reports_;
  result.elapsed = last_report_at_ - round_start_;
  return result;
}

}  // namespace erasmus::overlay
