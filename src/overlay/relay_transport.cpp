#include "overlay/relay_transport.h"

namespace erasmus::overlay {

namespace {
bool valid_msg_type(uint8_t raw) {
  return raw >= static_cast<uint8_t>(attest::MsgType::kCollectRequest) &&
         raw <= static_cast<uint8_t>(attest::MsgType::kOdResponse);
}
}  // namespace

RelayTransport::RelayTransport(net::Network& network, net::NodeId self,
                               size_t num_nodes, RelayTransportConfig config)
    : network_(network), self_(self), num_nodes_(num_nodes), config_(config) {
  network_.set_handler(self_,
                       [this](const net::Datagram& d) { on_datagram(d); });
}

RelayTransport::~RelayTransport() {
  network_.set_handler(self_, {});
}

void RelayTransport::launch_flood(net::NodeId target, attest::MsgType type,
                                  ByteView body) {
  CollectFlood flood;
  flood.flood = next_flood_++;
  flood.target = target;
  flood.ttl = config_.ttl;
  flood.inner_type = static_cast<uint8_t>(type);
  flood.request.assign(body.begin(), body.end());

  delivered_[flood.flood];  // open the dedup window for this flood
  while (delivered_.size() > config_.flood_memory) {
    delivered_.erase(delivered_.begin());
  }

  const Bytes payload =
      frame_relay(RelayMsg::kCollectFlood, flood.serialize());
  scratch_dsts_.clear();
  scratch_dsts_.reserve(num_nodes_);
  for (net::NodeId node = 0; node < num_nodes_; ++node) {
    if (node != self_) scratch_dsts_.push_back(node);
  }
  network_.broadcast(self_, scratch_dsts_, payload);
}

void RelayTransport::send(net::NodeId peer, attest::MsgType type,
                          ByteView body) {
  // A unicast is a targeted flood: everyone forwards, only `peer` serves.
  // The fresh flood id rebuilds the parent tree from the topology as it is
  // NOW, so per-device retries double as route re-discovery.
  ++stats_.targeted_floods;
  launch_flood(peer, type, body);
}

void RelayTransport::broadcast(const std::vector<net::NodeId>& /*peers*/,
                               attest::MsgType type, ByteView body) {
  // One flood covers the whole swarm regardless of the batch: flooding is
  // round-wide by nature. Non-targeted nodes' responses are deduplicated
  // by the service's session table like any stray datagram.
  ++stats_.floods_sent;
  launch_flood(kEveryone, type, body);
}

void RelayTransport::set_receiver(Receiver receiver) {
  receiver_ = std::move(receiver);
}

sim::Duration RelayTransport::latency() const {
  return (network_.latency() + config_.forward_spacing) *
         (static_cast<uint64_t>(config_.ttl) + 1);
}

void RelayTransport::on_datagram(const net::Datagram& dgram) {
  const auto framed = unframe_relay(dgram.payload);
  if (!framed) {
    ++stats_.malformed_frames;
    return;
  }
  if (framed->first == RelayMsg::kCollectFlood) {
    // Our own flood echoed back by a neighbour; nothing to do.
    return;
  }
  const auto report = RelayReport::deserialize(framed->second);
  if (!report || !valid_msg_type(report->inner_type)) {
    ++stats_.malformed_frames;
    return;
  }
  const auto it = delivered_.find(report->flood);
  if (it == delivered_.end()) {
    // A flood id we never launched, or one already outside the dedup
    // window: a straggler from a long-finished round (or a forgery).
    ++stats_.stale_reports;
    return;
  }
  if (!it->second.insert(report->origin).second) {
    ++stats_.duplicate_reports;  // same report over a second path
    return;
  }
  ++stats_.reports_received;
  if (hops_.size() <= report->hops) hops_.resize(report->hops + 1, 0);
  ++hops_[report->hops];
  if (receiver_) {
    receiver_(report->origin,
              static_cast<attest::MsgType>(report->inner_type),
              report->response);
  }
}

}  // namespace erasmus::overlay
