#include "overlay/relay_transport.h"

#include <algorithm>

namespace erasmus::overlay {

namespace {
bool valid_msg_type(uint8_t raw) {
  return raw >= static_cast<uint8_t>(attest::MsgType::kCollectRequest) &&
         raw <= static_cast<uint8_t>(attest::MsgType::kOdResponse);
}
}  // namespace

RelayTransport::RelayTransport(net::Network& network, net::NodeId self,
                               size_t num_nodes, RelayTransportConfig config)
    : network_(network), self_(self), num_nodes_(num_nodes), config_(config) {
  routes_.resize(num_nodes_);  // one slot per node; valid gates occupancy
  network_.set_handler(self_,
                       [this](const net::Datagram& d) { on_datagram(d); });
  register_instruments();
}

void RelayTransport::register_instruments() {
  obs::Registry* reg = config_.metrics;
  if (!reg) return;
  inst_.floods = &reg->counter("overlay", "floods_sent");
  inst_.targeted_floods = &reg->counter("overlay", "targeted_floods");
  inst_.scoped_sent = &reg->counter("overlay", "scoped_sent");
  inst_.scoped_fallbacks = &reg->counter("overlay", "scoped_fallbacks");
  inst_.naks = &reg->counter("overlay", "naks_received");
  inst_.reports = &reg->counter("overlay", "reports_received");
  inst_.duplicate_reports = &reg->counter("overlay", "duplicate_reports");
  inst_.stale_reports = &reg->counter("overlay", "stale_reports");
  inst_.spoofed_rejected = &reg->counter("overlay", "spoofed_rejected");
  // Inclusive upper bounds on integer relay counts; a report that crossed
  // more than 12 relays lands in the overflow bucket.
  inst_.hops = &reg->histogram("overlay", "hop_count",
                               {0.0, 1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0});
}

void RelayTransport::trace_overlay(const char* name, obs::TraceArgs args) {
  obs::TraceRecorder* trace = config_.trace;
  if (!trace || !trace->enabled(obs::Subsystem::kOverlay)) return;
  trace->instant(obs::Subsystem::kOverlay, network_.now(), name,
                 std::move(args));
}

RelayTransport::~RelayTransport() {
  network_.set_handler(self_, {});
}

void RelayTransport::register_flood(uint32_t flood) {
  delivered_[flood];  // open the dedup window for this flood
  while (delivered_.size() > config_.flood_memory) {
    agg_delivered_.erase(delivered_.begin()->first);
    delivered_.erase(delivered_.begin());
  }
}

void RelayTransport::launch_flood(std::vector<net::NodeId> targets,
                                  attest::MsgType type, ByteView body,
                                  bool aggregate_eligible) {
  CollectFlood flood;
  flood.flood = next_flood_++;
  flood.targets = std::move(targets);
  flood.ttl = config_.ttl;
  if (aggregate_eligible) flood.flags |= kFloodAggregate;
  flood.inner_type = static_cast<uint8_t>(type);
  flood.request.assign(body.begin(), body.end());

  register_flood(flood.flood);

  trace_overlay("flood",
                {{"flood", static_cast<uint64_t>(flood.flood)},
                 {"targets", static_cast<uint64_t>(flood.targets.size())},
                 {"ttl", static_cast<uint64_t>(flood.ttl)}});

  const Bytes payload =
      frame_relay(RelayMsg::kCollectFlood, flood.serialize());
  scratch_dsts_.clear();
  scratch_dsts_.reserve(num_nodes_);
  for (net::NodeId node = 0; node < num_nodes_; ++node) {
    if (node != self_) scratch_dsts_.push_back(node);
  }
  network_.broadcast(self_, scratch_dsts_, payload);
}

void RelayTransport::launch_scoped(CachedRoute& route, attest::MsgType type,
                                   ByteView body) {
  ScopedRequest request;
  request.flood = next_flood_++;
  request.inner_type = static_cast<uint8_t>(type);
  // The first hop is addressed directly; it receives the rest of the
  // path down to (and including) the target.
  request.route.assign(route.route.begin() + 1, route.route.end());
  request.request.assign(body.begin(), body.end());

  register_flood(request.flood);  // the response report needs dedup state

  trace_overlay("scoped_send",
                {{"flood", static_cast<uint64_t>(request.flood)},
                 {"target", static_cast<uint64_t>(route.route.back())},
                 {"hops", static_cast<uint64_t>(route.route.size())}});

  route.used = true;
  network_.send(self_, route.route.front(),
                frame_relay(RelayMsg::kScopedRequest, request.serialize()));
}

bool RelayTransport::has_fresh_route(net::NodeId peer) const {
  if (peer >= routes_.size()) return false;
  const CachedRoute& route = routes_[peer];
  return route.valid && !route.used &&
         network_.now() - route.learned_at <= config_.route_ttl;
}

void RelayTransport::send(net::NodeId peer, attest::MsgType type,
                          ByteView body) {
  const bool retry = next_broadcast_is_retry_;
  next_broadcast_is_retry_ = false;
  // Scoped routing applies to RETRIES only: a first attempt has no
  // business burning the route cache the retry path depends on.
  if (retry && config_.scoped_retries) {
    if (has_fresh_route(peer)) {
      // The peer's path was recorded recently: retry as a source-routed
      // unicast down it instead of waking the whole swarm. Burned after
      // one use -- a silent failure means the route is suspect, so the
      // next retry re-floods.
      ++stats_.scoped_sent;
      if (inst_.scoped_sent) inst_.scoped_sent->add();
      launch_scoped(routes_[peer], type, body);
      return;
    }
    ++stats_.scoped_fallbacks;
    if (inst_.scoped_fallbacks) inst_.scoped_fallbacks->add();
    trace_overlay("scoped_fallback", {{"target", static_cast<uint64_t>(peer)}});
  }
  // A targeted flood: everyone forwards, only `peer` serves. The fresh
  // flood id rebuilds the parent tree from the topology as it is NOW, so
  // per-device re-floods double as route re-discovery.
  ++stats_.targeted_floods;
  if (inst_.targeted_floods) inst_.targeted_floods->add();
  launch_flood({peer}, type, body);
}

void RelayTransport::broadcast(const std::vector<net::NodeId>& peers,
                               attest::MsgType type, ByteView body) {
  const bool retry_wave = next_broadcast_is_retry_;
  next_broadcast_is_retry_ = false;
  // A coalesced retry wave where EVERY member has a fresh recorded path
  // needs no flood at all: unicast each down its parent chain. (All or
  // nothing -- once one member needs a flood, the flood reaches everyone
  // anyway, so extra unicasts would only add traffic. Retries only --
  // first-attempt dispatch must not burn the route cache.)
  if (retry_wave && config_.scoped_retries && !peers.empty()) {
    const bool all_routed = std::all_of(
        peers.begin(), peers.end(),
        [this](net::NodeId peer) { return has_fresh_route(peer); });
    if (all_routed) {
      for (const net::NodeId peer : peers) {
        ++stats_.scoped_sent;
        if (inst_.scoped_sent) inst_.scoped_sent->add();
        launch_scoped(routes_[peer], type, body);
      }
      return;
    }
    // Retry-economy accounting: how many retried devices had no usable
    // route, forcing this wave back onto the flood path.
    for (const net::NodeId peer : peers) {
      if (!has_fresh_route(peer)) {
        ++stats_.scoped_fallbacks;
        if (inst_.scoped_fallbacks) inst_.scoped_fallbacks->add();
        trace_overlay("scoped_fallback",
                      {{"target", static_cast<uint64_t>(peer)}});
      }
    }
  }
  // One flood covers the dispatch batch: flooding is field-wide by
  // nature, but scoping the serve set to the batch keeps the report
  // volume inside the service's window. A batch that covers every node
  // compresses to the {kEveryone} wildcard.
  if (retry_wave) {
    ++stats_.targeted_floods;
    if (inst_.targeted_floods) inst_.targeted_floods->add();
  } else {
    ++stats_.floods_sent;
    if (inst_.floods) inst_.floods->add();
  }
  // Multi-member waves are aggregate-eligible; a single-device batch has
  // nothing to combine and stays on the raw path.
  const bool aggregate_eligible = config_.aggregate && peers.size() > 1;
  if (peers.size() + 1 >= num_nodes_) {
    launch_flood({kEveryone}, type, body, aggregate_eligible);
    return;
  }
  launch_flood(peers, type, body, aggregate_eligible);
}

void RelayTransport::set_receiver(Receiver receiver) {
  receiver_ = std::move(receiver);
}

sim::Duration RelayTransport::latency() const {
  return (network_.latency() + config_.forward_spacing) *
         (static_cast<uint64_t>(config_.ttl) + 1);
}

double RelayTransport::take_congestion() {
  const double occupancy = pending_congestion_;
  pending_congestion_ = 0.0;
  return occupancy;
}

void RelayTransport::on_datagram(const net::Datagram& dgram) {
  const auto framed = unframe_relay(dgram.payload);
  if (!framed) {
    ++stats_.malformed_frames;
    return;
  }
  switch (framed->first) {
    case RelayMsg::kCollectFlood:
    case RelayMsg::kScopedRequest:
      // Our own traffic echoed back by a neighbour; nothing to do.
      return;
    case RelayMsg::kScopedNak: {
      const auto nak = ScopedNak::deserialize(framed->second);
      if (!nak) {
        ++stats_.malformed_frames;
        return;
      }
      // A hop on the cached route lost its next link: the route is
      // stale. Evict it so the session's next retry re-floods.
      ++stats_.naks_received;
      if (inst_.naks) inst_.naks->add();
      trace_overlay("nak", {{"flood", static_cast<uint64_t>(nak->flood)},
                            {"target", static_cast<uint64_t>(nak->target)}});
      if (nak->target < routes_.size()) routes_[nak->target].valid = false;
      return;
    }
    case RelayMsg::kAggregateReport:
      handle_aggregate(framed->second);
      return;
    case RelayMsg::kRelayReport:
      break;
  }
  const auto report = RelayReport::deserialize(framed->second);
  if (!report || !valid_msg_type(report->inner_type)) {
    ++stats_.malformed_frames;
    return;
  }
  if (report->origin >= num_nodes_) {
    // Claimed origin does not exist on this network: a Sybil/spoofed
    // report. Rejected BEFORE the congestion sample and route-cache
    // refresh below -- forged traffic must not poison either.
    ++stats_.spoofed_rejected;
    if (inst_.spoofed_rejected) inst_.spoofed_rejected->add();
    trace_overlay("spoofed_rejected",
                  {{"flood", static_cast<uint64_t>(report->flood)},
                   {"origin", static_cast<uint64_t>(report->origin)}});
    return;
  }
  // Any well-formed report carries live routing and congestion evidence,
  // duplicates and stragglers included -- the relay queues and links it
  // crossed are real even when the payload is redundant.
  pending_congestion_ = std::max(
      pending_congestion_, static_cast<double>(report->queue) / 255.0);
  if (config_.scoped_retries && !report->path.empty() &&
      report->path.front() == report->origin &&
      report->path.size() == static_cast<size_t>(report->hops) + 1) {
    // The path, reversed, is the verifier's downlink route to the origin
    // -- and every prefix of it is the route to the relay that appended
    // that hop. Cache them all: a device whose own response was lost is
    // still reachable over its parent chain whenever it relayed anybody
    // else's report.
    const sim::Time now = network_.now();
    std::vector<net::NodeId> route;
    route.reserve(report->path.size());
    for (auto hop = report->path.rbegin(); hop != report->path.rend();
         ++hop) {
      route.push_back(*hop);
      if (*hop < routes_.size()) {
        routes_[*hop] = CachedRoute{route, now, /*used=*/false,
                                    /*valid=*/true};
      }
    }
  }
  const auto it = delivered_.find(report->flood);
  if (it == delivered_.end()) {
    // A flood id we never launched, or one already outside the dedup
    // window: a straggler from a long-finished round (or a forgery).
    ++stats_.stale_reports;
    if (inst_.stale_reports) inst_.stale_reports->add();
    return;
  }
  if (!it->second.insert(report->origin).second) {
    ++stats_.duplicate_reports;  // same report over a second path
    if (inst_.duplicate_reports) inst_.duplicate_reports->add();
    return;
  }
  ++stats_.reports_received;
  if (inst_.reports) inst_.reports->add();
  if (inst_.hops) inst_.hops->observe(static_cast<double>(report->hops));
  trace_overlay("report",
                {{"flood", static_cast<uint64_t>(report->flood)},
                 {"origin", static_cast<uint64_t>(report->origin)},
                 {"hops", static_cast<uint64_t>(report->hops)},
                 {"queue", static_cast<double>(report->queue) / 255.0}});
  if (hops_.size() <= report->hops) hops_.resize(report->hops + 1, 0);
  ++hops_[report->hops];
  if (receiver_) {
    receiver_(report->origin,
              static_cast<attest::MsgType>(report->inner_type),
              report->response);
  }
}

void RelayTransport::handle_aggregate(ByteView body) {
  const auto env = AggregateReport::deserialize(body);
  if (!env) {
    ++stats_.malformed_frames;
    return;
  }
  // The head's queue stamp is congestion evidence like any report's.
  pending_congestion_ = std::max(
      pending_congestion_, static_cast<double>(env->queue) / 255.0);
  if (config_.scoped_retries && !env->path.empty() &&
      env->path.front() == env->head &&
      env->path.size() == static_cast<size_t>(env->hops) + 1) {
    // Same prefix-caching as raw reports: the reversed path is the route
    // to the head, and each prefix routes to the relay that stamped it.
    const sim::Time now = network_.now();
    std::vector<net::NodeId> route;
    route.reserve(env->path.size());
    for (auto hop = env->path.rbegin(); hop != env->path.rend(); ++hop) {
      route.push_back(*hop);
      if (*hop < routes_.size()) {
        routes_[*hop] = CachedRoute{route, now, /*used=*/false,
                                    /*valid=*/true};
      }
    }
  }
  if (delivered_.find(env->flood) == delivered_.end()) {
    ++stats_.stale_reports;
    if (inst_.stale_reports) inst_.stale_reports->add();
    return;
  }
  if (!agg_delivered_[env->flood].insert(env->head).second) {
    ++stats_.duplicate_aggregates;  // same aggregate over a second path
    return;
  }
  const auto frame = aggregate::AggregateFrame::deserialize(env->payload);
  if (!frame || frame->head != env->head || frame->flood != env->flood) {
    // An unparsable payload -- or an envelope whose addressing disagrees
    // with the authenticated frame inside it -- is a malformed frame.
    ++stats_.malformed_frames;
    return;
  }
  ++stats_.aggregates_received;
  stats_.aggregate_members += frame->members.size();
  stats_.aggregate_wire_bytes += env->payload.size();
  stats_.aggregate_raw_bytes += frame->raw_bytes;
  if (inst_.hops) inst_.hops->observe(static_cast<double>(env->hops));
  trace_overlay("aggregate",
                {{"flood", static_cast<uint64_t>(env->flood)},
                 {"head", static_cast<uint64_t>(env->head)},
                 {"members", static_cast<uint64_t>(frame->members.size())},
                 {"hops", static_cast<uint64_t>(env->hops)}});
  if (aggregate_receiver_) aggregate_receiver_(*frame, env->hops);
}

}  // namespace erasmus::overlay
