// Verifier-side swarm collection driver over the overlay.
//
// The port of the legacy swarm::RelayCollector onto the unified verifier
// stack: where the old collector drove a per-device
// std::vector<attest::Verifier*> with hand-rolled receive/dedup/verify
// logic, this one owns an overlay::RelayTransport and an
// AttestationService over a DeviceDirectory -- the same session machine
// (timeouts, retries, stray handling, audit hooks) every other deployment
// shape uses. run_round() floods one collection round and gathers
// whatever part of the swarm is momentarily reachable (§6).
#pragma once

#include <vector>

#include "attest/directory.h"
#include "attest/service.h"
#include "overlay/relay_transport.h"
#include "swarm/qosa.h"

namespace erasmus::overlay {

struct RelayCollectorConfig {
  RelayTransportConfig transport;
  /// Per-session retry budget inside a round's deadline. Each retry is a
  /// fresh targeted flood, i.e. a route re-discovery.
  int max_retries = 1;
  /// Per-attempt response timeout; floored by the service at twice the
  /// transport's multi-hop latency estimate.
  sim::Duration response_timeout = sim::Duration::seconds(2);
};

class RelayCollector {
 public:
  /// The verifier endpoint is node `self` on `network`; `directory` maps
  /// device ids to their overlay node ids and holds each device's record.
  /// `num_nodes` bounds the flood loop (devices + this endpoint).
  RelayCollector(sim::EventQueue& queue, net::Network& network,
                 net::NodeId self, attest::DeviceDirectory& directory,
                 size_t num_nodes, RelayCollectorConfig config = {});

  struct RoundResult {
    std::vector<swarm::DeviceStatus> statuses;  // indexed by device id
    size_t reports_received = 0;
    sim::Duration elapsed;  // flood to last accepted report
  };

  /// Runs one round to completion: floods a "collect k", advances the
  /// event queue to the deadline, and judges every response through the
  /// shared verifier core. Sessions still unresolved at the deadline are
  /// aborted (the device counts as not attested this round).
  RoundResult run_round(uint32_t k, sim::Duration deadline);

  RelayTransport& transport() { return transport_; }
  const attest::AttestationService& service() const { return service_; }

 private:
  sim::EventQueue& queue_;
  attest::DeviceDirectory& directory_;
  RelayTransport transport_;
  attest::AttestationService service_;

  // Per-round capture, filled by the service observer.
  std::vector<swarm::DeviceStatus> statuses_;
  size_t reports_ = 0;
  sim::Time round_start_;
  sim::Time last_report_at_;
};

}  // namespace erasmus::overlay
