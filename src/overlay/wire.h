// Wire protocol of the multi-hop collection overlay.
//
// The overlay moves ordinary attest:: protocol messages across a swarm
// whose only connectivity is whatever multi-hop path exists at the instant
// of each send (paper §6). Two frame types do all the work:
//
//  * CollectFlood -- carries one verifier request outward. Every flood has
//    its own id and builds its own parent tree as it propagates: a node's
//    uplink for flood F is whichever neighbour it first heard F from. The
//    TTL bounds discovery depth; `target` scopes who serves the request
//    (everyone for a round broadcast, one node for a retry).
//  * RelayReport  -- carries one prover response back up the flood's
//    parent tree, store-and-forward hop by hop. Relays never parse,
//    verify or re-MAC the payload ("only relays reports and does not
//    perform any computation", LISA-alpha); they only bump the hop count.
//
// The inner request/response bytes are exactly what attest::Transport
// peers exchange, so the AttestationService session machine runs unchanged
// on top: the overlay is routing, not protocol.
#pragma once

#include <optional>
#include <utility>

#include "common/bytes.h"
#include "net/network.h"

namespace erasmus::overlay {

/// Wire tags, disjoint from attest::MsgType (which starts at 1) and
/// swarm::SedaMsg (0x30-).
enum class RelayMsg : uint8_t {
  kCollectFlood = 0x20,
  kRelayReport = 0x21,
};

/// CollectFlood::target wildcard: every node that hears the flood serves.
inline constexpr net::NodeId kEveryone = 0xffffffffu;

/// Flood-state memory sized for a fleet: in the worst case one round
/// broadcast plus one targeted retry flood PER session is in flight at
/// once. Undersizing is not a graceful degradation -- a relay that
/// forgets a live flood orphans its reports, and a transport that
/// forgets one turns valid responses into stale reports, forcing retry
/// floods. Both RelayNodeConfig::flood_memory and
/// RelayTransportConfig::flood_memory should use this for fleet-scale
/// deployments.
inline constexpr size_t flood_memory_for(size_t fleet) {
  return fleet + 16;
}

struct CollectFlood {
  uint32_t flood = 0;              // flood id == parent-tree id
  net::NodeId target = kEveryone;  // who serves (kEveryone: all hearers)
  uint8_t ttl = 8;                 // remaining re-flood budget
  uint8_t inner_type = 0;          // attest::MsgType of `request`
  Bytes request;                   // serialized attest request body

  Bytes serialize() const;
  static std::optional<CollectFlood> deserialize(ByteView data);
};

struct RelayReport {
  uint32_t flood = 0;
  net::NodeId origin = 0;   // the responding prover's node id
  uint8_t hops = 0;         // relays traversed so far (origin sends 0)
  uint8_t inner_type = 0;   // attest::MsgType of `response`
  Bytes response;           // serialized attest response body

  Bytes serialize() const;
  static std::optional<RelayReport> deserialize(ByteView data);
};

Bytes frame_relay(RelayMsg type, ByteView body);
std::optional<std::pair<RelayMsg, ByteView>> unframe_relay(ByteView data);

}  // namespace erasmus::overlay
