// Wire protocol of the multi-hop collection overlay.
//
// The overlay moves ordinary attest:: protocol messages across a swarm
// whose only connectivity is whatever multi-hop path exists at the instant
// of each send (paper §6). Four frame types do all the work:
//
//  * CollectFlood  -- carries one verifier request outward. Every flood
//    has its own id and builds its own parent tree as it propagates: a
//    node's uplink for flood F is whichever neighbour it first heard F
//    from. The TTL bounds discovery depth; `targets` scopes who serves
//    the request ({kEveryone} for a full round, the current dispatch
//    window's devices for a windowed batch, one node for a retry).
//  * RelayReport   -- carries one prover response back up the flood's
//    parent tree, store-and-forward hop by hop. Relays never parse,
//    verify or re-MAC the payload ("only relays reports and does not
//    perform any computation", LISA-alpha); they bump the hop count,
//    append themselves to the path record and fold in their own queue
//    occupancy -- giving the verifier a usable downlink route and a
//    congestion signal for free.
//  * ScopedRequest -- a retry for a device whose uplink path is still
//    fresh: a source-routed unicast down the recorded path instead of a
//    whole-swarm re-flood. Each hop records the sender as its parent for
//    the scoped flood id, so the response report returns over the same
//    hops with the ordinary RelayReport machinery.
//  * ScopedNak     -- sent back up when a scoped hop finds its next hop
//    out of radio range; tells the verifier the cached route is stale so
//    the next retry falls back to a re-flood.
//
// The inner request/response bytes are exactly what attest::Transport
// peers exchange, so the AttestationService session machine runs unchanged
// on top: the overlay is routing, not protocol.
#pragma once

#include <algorithm>
#include <optional>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "net/network.h"

namespace erasmus::overlay {

/// Wire tags, disjoint from attest::MsgType (which starts at 1) and
/// swarm::SedaMsg (0x30-).
enum class RelayMsg : uint8_t {
  kCollectFlood = 0x20,
  kRelayReport = 0x21,
  kScopedRequest = 0x22,
  kScopedNak = 0x23,
  kAggregateReport = 0x24,
};

/// CollectFlood targets wildcard: every node that hears the flood serves.
inline constexpr net::NodeId kEveryone = 0xffffffffu;

/// Flood-state memory sized for a fleet: in the worst case one round
/// broadcast plus one targeted retry flood PER session is in flight at
/// once. Undersizing is not a graceful degradation -- a relay that
/// forgets a live flood orphans its reports, and a transport that
/// forgets one turns valid responses into stale reports, forcing retry
/// floods. Both RelayNodeConfig::flood_memory and
/// RelayTransportConfig::flood_memory should use this for fleet-scale
/// deployments.
inline constexpr size_t flood_memory_for(size_t fleet) {
  return fleet + 16;
}

/// CollectFlood flag: cluster heads may absorb this flood's reports into
/// aggregate frames. Round broadcasts set it; single-target retries and
/// demand fetches never do -- their whole point is raw per-device evidence.
inline constexpr uint8_t kFloodAggregate = 0x01;

struct CollectFlood {
  uint32_t flood = 0;      // flood id == parent-tree id
  uint8_t ttl = 8;         // remaining re-flood budget
  /// Re-broadcasts behind this frame: the verifier launches with 0, every
  /// forwarder increments (saturating). A node that first hears the flood
  /// at depth d sits d+1 hops from the verifier -- the input to depth-band
  /// cluster-head election.
  uint8_t depth = 0;
  uint8_t flags = 0;       // kFloodAggregate
  uint8_t inner_type = 0;  // attest::MsgType of `request`
  /// Who serves: {kEveryone}, or an explicit device list (a windowed
  /// dispatch batch, or a single retry target). Everyone still FORWARDS;
  /// scoping only bounds who answers, and with it the report volume one
  /// flood injects into the relay queues.
  std::vector<net::NodeId> targets{kEveryone};
  Bytes request;  // serialized attest request body

  bool serves(net::NodeId node) const {
    return std::find(targets.begin(), targets.end(), kEveryone) !=
               targets.end() ||
           std::find(targets.begin(), targets.end(), node) != targets.end();
  }

  Bytes serialize() const;
  static std::optional<CollectFlood> deserialize(ByteView data);
};

struct RelayReport {
  uint32_t flood = 0;
  net::NodeId origin = 0;  // the responding prover's node id
  uint8_t hops = 0;        // relays traversed so far (origin sends 0)
  uint8_t inner_type = 0;  // attest::MsgType of `response`
  /// Worst store-and-forward queue occupancy along the path so far,
  /// scaled to 0..255 (occupancy / depth). The verifier damps its
  /// dispatch window when this saturates.
  uint8_t queue = 0;
  /// Route record: origin first, then every relay that forwarded the
  /// report. Reversed, this is the verifier's downlink path for a scoped
  /// retry.
  std::vector<net::NodeId> path;
  Bytes response;  // serialized attest response body

  Bytes serialize() const;
  static std::optional<RelayReport> deserialize(ByteView data);
};

/// Routing envelope for one cluster head's aggregate (hierarchical
/// collection). Travels up the parent tree exactly like a RelayReport --
/// hop count, path record, queue piggyback -- but the payload is an
/// aggregate::AggregateFrame covering a whole cluster, opaque to relays
/// (heads upstream forward it unchanged; there is no re-aggregation).
struct AggregateReport {
  uint32_t flood = 0;
  net::NodeId head = 0;  // the elected head that built the payload
  uint8_t hops = 0;      // relays traversed so far (head sends 0)
  uint8_t queue = 0;     // worst queue occupancy along the path, 0..255
  std::vector<net::NodeId> path;  // head first, then every forwarder
  Bytes payload;  // serialized aggregate::AggregateFrame

  Bytes serialize() const;
  static std::optional<AggregateReport> deserialize(ByteView data);
};

struct ScopedRequest {
  uint32_t flood = 0;      // fresh id from the transport's flood space
  uint8_t inner_type = 0;  // attest::MsgType of `request`
  /// Hops still ahead of the receiver, ending at the served device; an
  /// empty route means "you are the target". Each forwarder strips
  /// itself off the front.
  std::vector<net::NodeId> route;
  Bytes request;

  Bytes serialize() const;
  static std::optional<ScopedRequest> deserialize(ByteView data);
};

struct ScopedNak {
  uint32_t flood = 0;
  net::NodeId target = 0;  // device whose cached route broke

  Bytes serialize() const;
  static std::optional<ScopedNak> deserialize(ByteView data);
};

Bytes frame_relay(RelayMsg type, ByteView body);
std::optional<std::pair<RelayMsg, ByteView>> unframe_relay(ByteView data);

}  // namespace erasmus::overlay
