#include "overlay/wire.h"

#include "common/serde.h"

namespace erasmus::overlay {

Bytes CollectFlood::serialize() const {
  ByteWriter w;
  w.u32(flood);
  w.u32(target);
  w.u8(ttl);
  w.u8(inner_type);
  w.var_bytes(request);
  return w.take();
}

std::optional<CollectFlood> CollectFlood::deserialize(ByteView data) {
  ByteReader r(data);
  CollectFlood f;
  f.flood = r.u32();
  f.target = r.u32();
  f.ttl = r.u8();
  f.inner_type = r.u8();
  f.request = r.var_bytes();
  if (!r.done()) return std::nullopt;
  return f;
}

Bytes RelayReport::serialize() const {
  ByteWriter w;
  w.u32(flood);
  w.u32(origin);
  w.u8(hops);
  w.u8(inner_type);
  w.var_bytes(response);
  return w.take();
}

std::optional<RelayReport> RelayReport::deserialize(ByteView data) {
  ByteReader r(data);
  RelayReport report;
  report.flood = r.u32();
  report.origin = r.u32();
  report.hops = r.u8();
  report.inner_type = r.u8();
  report.response = r.var_bytes();
  if (!r.done()) return std::nullopt;
  return report;
}

Bytes frame_relay(RelayMsg type, ByteView body) {
  ByteWriter w;
  w.u8(static_cast<uint8_t>(type));
  w.raw(body);
  return w.take();
}

std::optional<std::pair<RelayMsg, ByteView>> unframe_relay(ByteView data) {
  if (data.empty()) return std::nullopt;
  const uint8_t tag = data[0];
  if (tag != static_cast<uint8_t>(RelayMsg::kCollectFlood) &&
      tag != static_cast<uint8_t>(RelayMsg::kRelayReport)) {
    return std::nullopt;
  }
  return std::make_pair(static_cast<RelayMsg>(tag), data.subspan(1));
}

}  // namespace erasmus::overlay
