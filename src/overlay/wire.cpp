#include "overlay/wire.h"

#include "common/serde.h"

namespace erasmus::overlay {

namespace {

void write_node_list(ByteWriter& w, const std::vector<net::NodeId>& nodes) {
  w.u32(static_cast<uint32_t>(nodes.size()));
  for (const net::NodeId node : nodes) w.u32(node);
}

std::optional<std::vector<net::NodeId>> read_node_list(ByteReader& r) {
  const uint32_t count = r.u32();
  // Each entry costs 4 bytes, so a count the remaining input cannot cover
  // is malformed -- reject before reserving anything (adversarial frames
  // must not drive allocation).
  if (!r.ok() || count > r.remaining() / 4) return std::nullopt;
  std::vector<net::NodeId> nodes;
  nodes.reserve(count);
  for (uint32_t i = 0; i < count; ++i) nodes.push_back(r.u32());
  if (!r.ok()) return std::nullopt;
  return nodes;
}

}  // namespace

Bytes CollectFlood::serialize() const {
  ByteWriter w;
  w.u32(flood);
  w.u8(ttl);
  w.u8(depth);
  w.u8(flags);
  w.u8(inner_type);
  write_node_list(w, targets);
  w.var_bytes(request);
  return w.take();
}

std::optional<CollectFlood> CollectFlood::deserialize(ByteView data) {
  ByteReader r(data);
  CollectFlood f;
  f.flood = r.u32();
  f.ttl = r.u8();
  f.depth = r.u8();
  f.flags = r.u8();
  f.inner_type = r.u8();
  auto targets = read_node_list(r);
  if (!targets) return std::nullopt;
  f.targets = std::move(*targets);
  f.request = r.var_bytes();
  if (!r.done()) return std::nullopt;
  return f;
}

Bytes RelayReport::serialize() const {
  ByteWriter w;
  w.u32(flood);
  w.u32(origin);
  w.u8(hops);
  w.u8(inner_type);
  w.u8(queue);
  write_node_list(w, path);
  w.var_bytes(response);
  return w.take();
}

std::optional<RelayReport> RelayReport::deserialize(ByteView data) {
  ByteReader r(data);
  RelayReport report;
  report.flood = r.u32();
  report.origin = r.u32();
  report.hops = r.u8();
  report.inner_type = r.u8();
  report.queue = r.u8();
  auto path = read_node_list(r);
  if (!path) return std::nullopt;
  report.path = std::move(*path);
  report.response = r.var_bytes();
  if (!r.done()) return std::nullopt;
  return report;
}

Bytes AggregateReport::serialize() const {
  ByteWriter w;
  w.u32(flood);
  w.u32(head);
  w.u8(hops);
  w.u8(queue);
  write_node_list(w, path);
  w.var_bytes(payload);
  return w.take();
}

std::optional<AggregateReport> AggregateReport::deserialize(ByteView data) {
  ByteReader r(data);
  AggregateReport agg;
  agg.flood = r.u32();
  agg.head = r.u32();
  agg.hops = r.u8();
  agg.queue = r.u8();
  auto path = read_node_list(r);
  if (!path) return std::nullopt;
  agg.path = std::move(*path);
  agg.payload = r.var_bytes();
  if (!r.done()) return std::nullopt;
  return agg;
}

Bytes ScopedRequest::serialize() const {
  ByteWriter w;
  w.u32(flood);
  w.u8(inner_type);
  write_node_list(w, route);
  w.var_bytes(request);
  return w.take();
}

std::optional<ScopedRequest> ScopedRequest::deserialize(ByteView data) {
  ByteReader r(data);
  ScopedRequest req;
  req.flood = r.u32();
  req.inner_type = r.u8();
  auto route = read_node_list(r);
  if (!route) return std::nullopt;
  req.route = std::move(*route);
  req.request = r.var_bytes();
  if (!r.done()) return std::nullopt;
  return req;
}

Bytes ScopedNak::serialize() const {
  ByteWriter w;
  w.u32(flood);
  w.u32(target);
  return w.take();
}

std::optional<ScopedNak> ScopedNak::deserialize(ByteView data) {
  ByteReader r(data);
  ScopedNak nak;
  nak.flood = r.u32();
  nak.target = r.u32();
  if (!r.done()) return std::nullopt;
  return nak;
}

Bytes frame_relay(RelayMsg type, ByteView body) {
  ByteWriter w;
  w.u8(static_cast<uint8_t>(type));
  w.raw(body);
  return w.take();
}

std::optional<std::pair<RelayMsg, ByteView>> unframe_relay(ByteView data) {
  if (data.empty()) return std::nullopt;
  const uint8_t tag = data[0];
  if (tag < static_cast<uint8_t>(RelayMsg::kCollectFlood) ||
      tag > static_cast<uint8_t>(RelayMsg::kAggregateReport)) {
    return std::nullopt;
  }
  return std::make_pair(static_cast<RelayMsg>(tag), data.subspan(1));
}

}  // namespace erasmus::overlay
