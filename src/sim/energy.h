// Energy model for attestation scheduling decisions.
//
// The paper (§3.1): "though low values [T_M, T_C] increase QoA, they also
// increase Prv's overall burden, in terms of computation, power consumption
// and communication." This module quantifies that burden so the QoA planner
// (analysis/qoa_planner.h) can trade detection probability against battery
// life.
//
// Model: the MCU draws `active_power` while measuring (hashing at full
// speed), `radio_power` while transmitting, and `sleep_power` otherwise.
// Constants are typical datasheet values for the two target platforms.
#pragma once

#include "crypto/mac.h"
#include "sim/device_profile.h"
#include "sim/time.h"

namespace erasmus::sim {

/// Energy in microjoules (uJ). 64-bit; ~584 kJ of range.
struct Energy {
  double microjoules = 0.0;

  double millijoules() const { return microjoules / 1e3; }
  double joules() const { return microjoules / 1e6; }

  Energy operator+(Energy other) const {
    return Energy{microjoules + other.microjoules};
  }
  Energy& operator+=(Energy other) {
    microjoules += other.microjoules;
    return *this;
  }
  Energy operator*(double k) const { return Energy{microjoules * k}; }
};

struct EnergyProfile {
  std::string name;
  double active_power_mw = 0.0;  // CPU busy (measurement)
  double radio_power_mw = 0.0;   // TX
  double sleep_power_mw = 0.0;   // idle baseline
  /// Receive-path radio draw; 0 means "same as TX" (radio_power_mw).
  double radio_rx_power_mw = 0.0;
  /// Link rate used to turn bytes into radio airtime (per-byte costs for
  /// the runtime meter). Default is a 250 kbps 802.15.4-class radio.
  double radio_bits_per_s = 250e3;

  /// Energy to run the CPU flat-out for `d`.
  Energy active_energy(Duration d) const;
  /// Energy to keep the radio on for `d`.
  Energy radio_energy(Duration d) const;
  /// Baseline sleep energy over `d`.
  Energy sleep_energy(Duration d) const;

  /// Airtime of one payload byte at radio_bits_per_s.
  Duration byte_airtime() const;
  /// Radio energy to transmit / receive one payload byte.
  Energy tx_energy_per_byte() const;
  Energy rx_energy_per_byte() const;

  /// MSP430-class MCU: ~1.8 mW active @ 3V, low-power radio, uA sleep.
  static EnergyProfile msp430();
  /// i.MX6-class application processor: hundreds of mW active.
  static EnergyProfile imx6();
  /// TrustLite/TyTAN-class low-end MCU: MSP430-like radio, slightly
  /// hungrier core (EA-MPU rule checks on every access).
  static EnergyProfile trustlite();
};

/// Attestation energy ledger for one prover over a horizon.
struct AttestationEnergy {
  Energy measurement;     // CPU time hashing
  Energy communication;   // collection-phase packets
  Energy baseline;        // sleep floor over the horizon

  Energy total() const { return measurement + communication + baseline; }
};

/// Average attestation burden for a given configuration:
/// measurements every `tm` (each costing measurement_time of CPU) and
/// collections every `tc` (each transmitting k records).
AttestationEnergy attestation_energy(const DeviceProfile& device,
                                     const EnergyProfile& energy,
                                     crypto::MacAlgo algo,
                                     uint64_t attested_bytes,
                                     size_t record_bytes, Duration tm,
                                     Duration tc, Duration horizon);

/// Battery-life estimate in days for a battery of `battery_mwh` milliwatt-
/// hours under the above duty cycle.
double battery_life_days(const DeviceProfile& device,
                         const EnergyProfile& energy, crypto::MacAlgo algo,
                         uint64_t attested_bytes, size_t record_bytes,
                         Duration tm, Duration tc, double battery_mwh);

}  // namespace erasmus::sim
