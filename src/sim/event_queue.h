// Discrete-event simulation core.
//
// A single EventQueue drives every timed component in an experiment: hardware
// timers firing self-measurements, network packet deliveries, malware
// entering and leaving provers, and verifier collection rounds. Events at
// equal timestamps run in scheduling order (stable), which keeps runs
// bit-for-bit reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/time.h"

namespace erasmus::sim {

/// Handle for cancelling a scheduled event.
using EventId = uint64_t;

class EventQueue {
 public:
  /// Current virtual time. Monotonically non-decreasing.
  Time now() const { return now_; }

  /// Schedules `fn` at absolute time `at` (must be >= now()).
  EventId schedule_at(Time at, std::function<void()> fn);

  /// Schedules `fn` after a relative delay.
  EventId schedule_after(Duration delay, std::function<void()> fn);

  /// Cancels a pending event. Returns false if it already ran or was
  /// already cancelled.
  bool cancel(EventId id);

  /// Runs events until the queue is empty or `limit` is reached; time stops
  /// at the later of the last event and `limit` (if any event ran past it,
  /// it does not). Returns the number of events executed.
  size_t run_until(Time limit);

  /// Runs until the queue is empty. Returns the number of events executed.
  size_t run();

  /// Executes at most one event. Returns false if the queue is empty.
  bool step();

  /// Advances the clock with no event execution (used by tests).
  void advance_to(Time t);

  /// Live (not-yet-run, not-cancelled) events. Invariant: every id in
  /// `cancelled_` still has exactly one entry in `heap_` (cancel() only
  /// marks ids that are in `handlers_`, and the heap entry and the
  /// cancelled mark are discarded together when it reaches the top), so
  /// the subtraction cannot underflow.
  size_t pending() const { return heap_.size() - cancelled_.size(); }

 private:
  struct Entry {
    Time at;
    uint64_t seq;
    EventId id;
    // Ordered as a min-heap: earliest time first, FIFO within a timestamp.
    bool operator>(const Entry& other) const {
      if (at != other.at) return at > other.at;
      return seq > other.seq;
    }
  };

  /// Discards cancelled entries (and their `cancelled_` marks) from the
  /// top of the heap, then returns the next live entry without removing
  /// it; nullptr when no live event remains.
  const Entry* peek_next();

  Time now_ = Time::zero();
  uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::unordered_map<EventId, std::function<void()>> handlers_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace erasmus::sim
