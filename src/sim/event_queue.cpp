#include "sim/event_queue.h"

#include <cassert>
#include <stdexcept>

namespace erasmus::sim {

EventId EventQueue::schedule_at(Time at, std::function<void()> fn) {
  if (at < now_) {
    throw std::invalid_argument("EventQueue: cannot schedule in the past");
  }
  const EventId id = next_id_++;
  heap_.push(Entry{at, next_seq_++, id});
  handlers_.emplace(id, std::move(fn));
  return id;
}

EventId EventQueue::schedule_after(Duration delay, std::function<void()> fn) {
  return schedule_at(now_ + delay, std::move(fn));
}

bool EventQueue::cancel(EventId id) {
  auto it = handlers_.find(id);
  if (it == handlers_.end()) return false;
  handlers_.erase(it);
  cancelled_.insert(id);
  return true;
}

const EventQueue::Entry* EventQueue::peek_next() {
  while (!heap_.empty()) {
    const Entry& e = heap_.top();
    if (cancelled_.erase(e.id) > 0) {
      // Cancelled entry reaching the top: drop it and its mark together so
      // pending() stays exact.
      heap_.pop();
      continue;
    }
    return &e;
  }
  return nullptr;
}

bool EventQueue::step() {
  const Entry* next = peek_next();
  if (next == nullptr) return false;
  const Entry e = *next;
  heap_.pop();
  assert(e.at >= now_);
  now_ = e.at;
  auto it = handlers_.find(e.id);
  assert(it != handlers_.end());
  auto fn = std::move(it->second);
  handlers_.erase(it);
  fn();
  return true;
}

size_t EventQueue::run_until(Time limit) {
  size_t executed = 0;
  // Peeking (rather than pop + push-back) leaves a beyond-limit event
  // untouched in the heap, so interleaved cancel()/run_until() calls keep
  // the pending() bookkeeping exact.
  while (const Entry* next = peek_next()) {
    if (next->at > limit) break;
    const Entry e = *next;
    heap_.pop();
    now_ = e.at;
    auto it = handlers_.find(e.id);
    assert(it != handlers_.end());
    auto fn = std::move(it->second);
    handlers_.erase(it);
    fn();
    ++executed;
  }
  if (now_ < limit) now_ = limit;
  return executed;
}

size_t EventQueue::run() {
  size_t executed = 0;
  while (step()) ++executed;
  return executed;
}

void EventQueue::advance_to(Time t) {
  if (t < now_) {
    throw std::invalid_argument("EventQueue: cannot move time backwards");
  }
  now_ = t;
}

}  // namespace erasmus::sim
