#include "sim/event_queue.h"

#include <cassert>
#include <stdexcept>

namespace erasmus::sim {

EventId EventQueue::schedule_at(Time at, std::function<void()> fn) {
  if (at < now_) {
    throw std::invalid_argument("EventQueue: cannot schedule in the past");
  }
  const EventId id = next_id_++;
  heap_.push(Entry{at, next_seq_++, id});
  handlers_.emplace(id, std::move(fn));
  return id;
}

EventId EventQueue::schedule_after(Duration delay, std::function<void()> fn) {
  return schedule_at(now_ + delay, std::move(fn));
}

bool EventQueue::cancel(EventId id) {
  auto it = handlers_.find(id);
  if (it == handlers_.end()) return false;
  handlers_.erase(it);
  cancelled_.insert(id);
  return true;
}

bool EventQueue::pop_next(Entry& out) {
  while (!heap_.empty()) {
    Entry e = heap_.top();
    heap_.pop();
    auto cancelled_it = cancelled_.find(e.id);
    if (cancelled_it != cancelled_.end()) {
      cancelled_.erase(cancelled_it);
      continue;
    }
    out = e;
    return true;
  }
  return false;
}

bool EventQueue::step() {
  Entry e;
  if (!pop_next(e)) return false;
  assert(e.at >= now_);
  now_ = e.at;
  auto it = handlers_.find(e.id);
  assert(it != handlers_.end());
  auto fn = std::move(it->second);
  handlers_.erase(it);
  fn();
  return true;
}

size_t EventQueue::run_until(Time limit) {
  size_t executed = 0;
  while (!heap_.empty()) {
    // Peek for the next live event without executing it.
    Entry e;
    if (!pop_next(e)) break;
    if (e.at > limit) {
      // Push back and stop; the event stays pending.
      heap_.push(e);
      break;
    }
    now_ = e.at;
    auto it = handlers_.find(e.id);
    assert(it != handlers_.end());
    auto fn = std::move(it->second);
    handlers_.erase(it);
    fn();
    ++executed;
  }
  if (now_ < limit) now_ = limit;
  return executed;
}

size_t EventQueue::run() {
  size_t executed = 0;
  while (step()) ++executed;
  return executed;
}

void EventQueue::advance_to(Time t) {
  if (t < now_) {
    throw std::invalid_argument("EventQueue: cannot move time backwards");
  }
  now_ = t;
}

}  // namespace erasmus::sim
