// Virtual time for the discrete-event simulation.
//
// All device, network and protocol timing in this library is *virtual*:
// cryptographic work really executes on the host, but elapsed time is
// charged from a DeviceProfile cost model so experiments are deterministic
// and reproduce the paper's target platforms (8 MHz MSP430, 1 GHz i.MX6)
// regardless of host speed.
//
// Time is a strong type wrapping nanoseconds-since-boot; Duration wraps a
// nanosecond span. Both are 64-bit, giving ~584 years of range.
#pragma once

#include <cstdint>
#include <string>

namespace erasmus::sim {

/// A span of virtual time, in nanoseconds.
class Duration {
 public:
  constexpr Duration() = default;
  constexpr explicit Duration(uint64_t ns) : ns_(ns) {}

  static constexpr Duration nanos(uint64_t v) { return Duration(v); }
  static constexpr Duration micros(uint64_t v) { return Duration(v * 1000); }
  static constexpr Duration millis(uint64_t v) {
    return Duration(v * 1'000'000);
  }
  static constexpr Duration seconds(uint64_t v) {
    return Duration(v * 1'000'000'000);
  }
  static constexpr Duration minutes(uint64_t v) { return seconds(v * 60); }
  static constexpr Duration hours(uint64_t v) { return seconds(v * 3600); }

  constexpr uint64_t ns() const { return ns_; }
  constexpr double to_seconds() const { return static_cast<double>(ns_) / 1e9; }
  constexpr double to_millis() const { return static_cast<double>(ns_) / 1e6; }

  constexpr bool is_zero() const { return ns_ == 0; }

  constexpr Duration operator+(Duration other) const {
    return Duration(ns_ + other.ns_);
  }
  constexpr Duration operator-(Duration other) const {
    return Duration(ns_ - other.ns_);
  }
  constexpr Duration operator*(uint64_t k) const { return Duration(ns_ * k); }
  constexpr Duration operator/(uint64_t k) const { return Duration(ns_ / k); }
  constexpr uint64_t operator/(Duration other) const {
    return ns_ / other.ns_;
  }
  constexpr auto operator<=>(const Duration&) const = default;

 private:
  uint64_t ns_ = 0;
};

/// An instant of virtual time (nanoseconds since simulation start).
class Time {
 public:
  constexpr Time() = default;
  constexpr explicit Time(uint64_t ns) : ns_(ns) {}

  static constexpr Time zero() { return Time(0); }
  static constexpr Time max() { return Time(UINT64_MAX); }

  constexpr uint64_t ns() const { return ns_; }
  constexpr double to_seconds() const { return static_cast<double>(ns_) / 1e9; }

  constexpr Time operator+(Duration d) const { return Time(ns_ + d.ns()); }
  constexpr Time operator-(Duration d) const { return Time(ns_ - d.ns()); }
  constexpr Duration operator-(Time other) const {
    return Duration(ns_ - other.ns_);
  }
  constexpr auto operator<=>(const Time&) const = default;

 private:
  uint64_t ns_ = 0;
};

/// Renders a duration as a short human string ("1.50 s", "285.60 ms", ...).
std::string to_string(Duration d);
std::string to_string(Time t);

}  // namespace erasmus::sim
