#include "sim/energy.h"

#include <stdexcept>

namespace erasmus::sim {

namespace {
// P[mW] * t[s] = E[mJ]; we store uJ.
Energy power_for(double milliwatts, Duration d) {
  return Energy{milliwatts * d.to_seconds() * 1e3};
}
}  // namespace

Energy EnergyProfile::active_energy(Duration d) const {
  return power_for(active_power_mw, d);
}

Energy EnergyProfile::radio_energy(Duration d) const {
  return power_for(radio_power_mw, d);
}

Energy EnergyProfile::sleep_energy(Duration d) const {
  return power_for(sleep_power_mw, d);
}

Duration EnergyProfile::byte_airtime() const {
  if (radio_bits_per_s <= 0.0) return Duration(0);
  return Duration(static_cast<uint64_t>(8e9 / radio_bits_per_s));
}

Energy EnergyProfile::tx_energy_per_byte() const {
  return power_for(radio_power_mw, byte_airtime());
}

Energy EnergyProfile::rx_energy_per_byte() const {
  const double rx_mw =
      radio_rx_power_mw > 0.0 ? radio_rx_power_mw : radio_power_mw;
  return power_for(rx_mw, byte_airtime());
}

EnergyProfile EnergyProfile::msp430() {
  // MSP430F2xx-class: ~600 uA @ 3V active (1.8 mW), CC2500-class radio
  // ~21 mA @ 3V (63 mW) TX / ~19 mA (57 mW) RX at 250 kbps, ~1 uA sleep
  // (3 uW).
  return EnergyProfile{"MSP430 + low-power radio", 1.8, 63.0, 0.003,
                       57.0, 250e3};
}

EnergyProfile EnergyProfile::imx6() {
  // i.MX6 Solo-class: ~800 mW active core, ~200 mW Ethernet PHY (~150 mW
  // receiving), ~50 mW suspend floor, 100 Mbps link.
  return EnergyProfile{"i.MX6 + Ethernet", 800.0, 200.0, 50.0, 150.0, 100e6};
}

EnergyProfile EnergyProfile::trustlite() {
  // TrustLite/TyTAN-class low-end MCU: same CC2500-class radio as the
  // MSP430 platform, core a touch hungrier (EA-MPU rule checks), ~2 uA
  // sleep.
  return EnergyProfile{"TrustLite + low-power radio", 2.4, 63.0, 0.006,
                       57.0, 250e3};
}

AttestationEnergy attestation_energy(const DeviceProfile& device,
                                     const EnergyProfile& energy,
                                     crypto::MacAlgo algo,
                                     uint64_t attested_bytes,
                                     size_t record_bytes, Duration tm,
                                     Duration tc, Duration horizon) {
  if (tm.is_zero() || tc.is_zero()) {
    throw std::invalid_argument("attestation_energy: T_M, T_C must be > 0");
  }
  const uint64_t measurements = horizon / tm;
  const uint64_t collections = horizon / tc;
  const size_t k =
      static_cast<size_t>((tc.ns() + tm.ns() - 1) / tm.ns());  // ceil

  AttestationEnergy ledger;
  const Duration measure_time = device.measurement_time(algo, attested_bytes);
  ledger.measurement =
      energy.active_energy(measure_time) * static_cast<double>(measurements);

  // Collection: read k records + construct + send one packet per record
  // batch. Radio is on for construct+send; CPU cost is negligible (that is
  // the point of ERASMUS) but the store read keeps the MCU awake briefly.
  const Duration tx_time =
      device.packet_construct + device.packet_send +
      device.store_read_time(static_cast<uint64_t>(k) * record_bytes);
  ledger.communication =
      energy.radio_energy(tx_time) * static_cast<double>(collections);

  ledger.baseline = energy.sleep_energy(horizon);
  return ledger;
}

double battery_life_days(const DeviceProfile& device,
                         const EnergyProfile& energy, crypto::MacAlgo algo,
                         uint64_t attested_bytes, size_t record_bytes,
                         Duration tm, Duration tc, double battery_mwh) {
  const Duration day = Duration::hours(24);
  const auto per_day = attestation_energy(device, energy, algo,
                                          attested_bytes, record_bytes, tm,
                                          tc, day);
  const double mj_per_day = per_day.total().millijoules();
  if (mj_per_day <= 0.0) return 0.0;
  const double battery_mj = battery_mwh * 3600.0;  // mWh -> mJ
  return battery_mj / mj_per_day;
}

}  // namespace erasmus::sim
