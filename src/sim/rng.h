// Deterministic simulation RNG (xoshiro256** + splitmix64 seeding).
//
// NOT cryptographic: this drives experiment randomness (malware arrival
// phases, node mobility, workload generation) where reproducibility across
// runs matters. Cryptographic randomness lives in crypto/hmac_drbg.h and
// crypto/chacha20.h.
#pragma once

#include <array>
#include <cstdint>

namespace erasmus::sim {

class Rng {
 public:
  explicit Rng(uint64_t seed) { reseed(seed); }

  void reseed(uint64_t seed);

  uint64_t next_u64();

  /// Uniform in [0, bound). bound == 0 returns 0.
  uint64_t next_below(uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli trial with probability p.
  bool chance(double p) { return next_double() < p; }

  /// Uniform in [lo, hi].
  uint64_t uniform(uint64_t lo, uint64_t hi);

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean);

  /// Creates an independent child stream (for per-node RNGs).
  Rng split();

 private:
  std::array<uint64_t, 4> s_{};
};

}  // namespace erasmus::sim
