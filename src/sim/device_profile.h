// Device cost model: translates cryptographic and protocol work into
// virtual time for a target platform.
//
// The paper evaluates on two platforms:
//   * SMART+ on an OpenMSP430 FPGA core clocked at 8 MHz (Fig. 6), and
//   * HYDRA on an I.MX6 Sabre Lite (ARM Cortex-A9) at 1 GHz (Fig. 8, Tab. 2).
// We reproduce their timing *shape* with a linear cost model
//     time(op, len) = (setup_cycles + cycles_per_byte * len) / clock_hz
// calibrated to the paper's anchor points (see device_profile.cpp). Fixed
// protocol costs (request authentication, packet construction/send) are
// separate constants matching Table 2.
#pragma once

#include <cstdint>
#include <string>

#include "crypto/mac.h"
#include "sim/time.h"

namespace erasmus::sim {

/// Per-platform cost constants. All times derive from cycle counts except
/// the network constants, which the paper reports directly in ms.
struct DeviceProfile {
  std::string name;
  uint64_t clock_hz = 0;

  /// MAC/hash streaming cost over device memory.
  struct MacCost {
    uint64_t setup_cycles = 0;      // per-invocation overhead
    double cycles_per_byte = 0.0;   // asymptotic throughput
  };
  MacCost hmac_sha1;
  MacCost hmac_sha256;
  MacCost keyed_blake2s;

  /// Cost of authenticating + freshness-checking one verifier request
  /// (SMART+ [5] anti-DoS path; Table 2 row "Verify Request").
  uint64_t request_auth_cycles = 0;

  /// Timer interrupt service entry/exit around a self-measurement.
  uint64_t timer_isr_cycles = 0;

  /// Reading one stored measurement out of the windowed buffer.
  uint64_t store_read_cycles_per_byte = 1;

  /// Network constants (Table 2 rows "Construct UDP" / "Send UDP").
  Duration packet_construct = Duration::micros(3);
  Duration packet_send = Duration::micros(12);

  const MacCost& mac_cost(crypto::MacAlgo algo) const;

  /// Time to MAC `len` bytes with `algo` on this device.
  Duration mac_time(crypto::MacAlgo algo, uint64_t len) const;

  /// Time for a full self-measurement of `len` bytes of memory:
  /// hash+MAC pass plus timer ISR overhead (no request authentication --
  /// the heart of the paper's ERASMUS-vs-on-demand comparison).
  Duration measurement_time(crypto::MacAlgo algo, uint64_t len) const;

  /// Time for an on-demand attestation of `len` bytes: request
  /// authentication + freshness check, then the same measurement pass.
  Duration ondemand_time(crypto::MacAlgo algo, uint64_t len) const;

  /// Time to authenticate one verifier request.
  Duration request_auth_time() const;

  /// Time to read `bytes` of stored measurements for collection.
  Duration store_read_time(uint64_t bytes) const;

  Duration cycles_to_time(double cycles) const;

  /// SMART+ target: OpenMSP430 core @ 8 MHz (paper Fig. 6).
  static DeviceProfile msp430_8mhz();
  /// HYDRA target: I.MX6 Sabre Lite @ 1 GHz (paper Fig. 8, Table 2).
  static DeviceProfile imx6_1ghz();
};

}  // namespace erasmus::sim
