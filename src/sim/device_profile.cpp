#include "sim/device_profile.h"

#include <stdexcept>

namespace erasmus::sim {

const DeviceProfile::MacCost& DeviceProfile::mac_cost(
    crypto::MacAlgo algo) const {
  switch (algo) {
    case crypto::MacAlgo::kHmacSha1:
      return hmac_sha1;
    case crypto::MacAlgo::kHmacSha256:
      return hmac_sha256;
    case crypto::MacAlgo::kKeyedBlake2s:
      return keyed_blake2s;
  }
  throw std::invalid_argument("mac_cost: unknown algorithm");
}

Duration DeviceProfile::cycles_to_time(double cycles) const {
  return Duration(
      static_cast<uint64_t>(cycles * 1e9 / static_cast<double>(clock_hz)));
}

Duration DeviceProfile::mac_time(crypto::MacAlgo algo, uint64_t len) const {
  const MacCost& c = mac_cost(algo);
  return cycles_to_time(static_cast<double>(c.setup_cycles) +
                        c.cycles_per_byte * static_cast<double>(len));
}

Duration DeviceProfile::measurement_time(crypto::MacAlgo algo,
                                         uint64_t len) const {
  return cycles_to_time(static_cast<double>(timer_isr_cycles)) +
         mac_time(algo, len);
}

Duration DeviceProfile::ondemand_time(crypto::MacAlgo algo,
                                      uint64_t len) const {
  return request_auth_time() + mac_time(algo, len);
}

Duration DeviceProfile::request_auth_time() const {
  return cycles_to_time(static_cast<double>(request_auth_cycles));
}

Duration DeviceProfile::store_read_time(uint64_t bytes) const {
  return cycles_to_time(static_cast<double>(store_read_cycles_per_byte) *
                        static_cast<double>(bytes));
}

// --- Calibration -----------------------------------------------------------
//
// MSP430 @ 8 MHz (paper Fig. 6, 0-10 KB sweep, run-times up to ~7-8 s):
//   * HMAC-SHA256: ~7 s at 10 KB  ->  7 s * 8e6 Hz / 10240 B ~= 5470 c/B.
//   * Keyed BLAKE2s is the faster curve (~4.4 s at 10 KB) -> ~3440 c/B.
//   * HMAC-SHA1 sits between SHA-256 and BLAKE2s         -> ~4400 c/B.
//   These magnitudes reflect the paper's unoptimised C code compiled with
//   msp430-gcc on a 16-bit MCU (32-bit rotates and adds are multi-word).
//
// I.MX6 @ 1 GHz (paper Fig. 8 and Table 2):
//   * Table 2 anchors keyed BLAKE2s exactly: 285.6 ms over 10 MB
//       -> 285.6e-3 * 1e9 / (10 * 2^20) = 27.24 c/B.
//   * HMAC-SHA256: ~0.55 s at 10 MB (Fig. 8)  -> ~52.5 c/B.
//   * "Verify Request" = 0.005 ms  -> 5000 cycles.
//   * "Construct UDP" = 0.003 ms, "Send UDP" = 0.012 ms (Table 2).
// ---------------------------------------------------------------------------

DeviceProfile DeviceProfile::msp430_8mhz() {
  DeviceProfile p;
  p.name = "OpenMSP430 @ 8 MHz (SMART+)";
  p.clock_hz = 8'000'000;
  p.hmac_sha1 = {/*setup=*/18'000, /*cycles_per_byte=*/4400.0};
  p.hmac_sha256 = {/*setup=*/20'000, /*cycles_per_byte=*/5470.0};
  p.keyed_blake2s = {/*setup=*/9'000, /*cycles_per_byte=*/3440.0};
  // Authenticating a verifier request MACs a ~16-byte token and compares:
  // dominated by one MAC setup + a few blocks.
  p.request_auth_cycles = 120'000;  // 15 ms at 8 MHz
  p.timer_isr_cycles = 400;
  p.store_read_cycles_per_byte = 2;
  // MSP430 serial/radio link is far slower than the i.MX6 Ethernet path.
  p.packet_construct = Duration::micros(150);
  p.packet_send = Duration::micros(600);
  return p;
}

DeviceProfile DeviceProfile::imx6_1ghz() {
  DeviceProfile p;
  p.name = "I.MX6 Sabre Lite @ 1 GHz (HYDRA)";
  p.clock_hz = 1'000'000'000;
  p.hmac_sha1 = {/*setup=*/6'000, /*cycles_per_byte=*/44.0};
  p.hmac_sha256 = {/*setup=*/8'000, /*cycles_per_byte=*/52.5};
  p.keyed_blake2s = {/*setup=*/3'000, /*cycles_per_byte=*/27.24};
  p.request_auth_cycles = 5'000;  // Table 2: 0.005 ms
  p.timer_isr_cycles = 1'200;
  p.store_read_cycles_per_byte = 1;
  p.packet_construct = Duration::micros(3);   // Table 2: 0.003 ms
  p.packet_send = Duration::micros(12);       // Table 2: 0.012 ms
  return p;
}

}  // namespace erasmus::sim
