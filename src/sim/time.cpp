#include "sim/time.h"

#include <cstdio>

namespace erasmus::sim {

std::string to_string(Duration d) {
  char buf[64];
  const uint64_t ns = d.ns();
  if (ns >= 1'000'000'000ull) {
    std::snprintf(buf, sizeof(buf), "%.3f s", static_cast<double>(ns) / 1e9);
  } else if (ns >= 1'000'000ull) {
    std::snprintf(buf, sizeof(buf), "%.3f ms", static_cast<double>(ns) / 1e6);
  } else if (ns >= 1'000ull) {
    std::snprintf(buf, sizeof(buf), "%.3f us", static_cast<double>(ns) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%llu ns",
                  static_cast<unsigned long long>(ns));
  }
  return buf;
}

std::string to_string(Time t) { return to_string(Duration(t.ns())) + " @"; }

}  // namespace erasmus::sim
