#include "sim/rng.h"

#include <bit>
#include <cmath>

namespace erasmus::sim {

namespace {

uint64_t splitmix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

void Rng::reseed(uint64_t seed) {
  uint64_t x = seed;
  for (auto& word : s_) word = splitmix64(x);
}

uint64_t Rng::next_u64() {
  // xoshiro256**
  const uint64_t result = std::rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = std::rotl(s_[3], 45);
  return result;
}

uint64_t Rng::next_below(uint64_t bound) {
  if (bound == 0) return 0;
  const uint64_t limit = UINT64_MAX - (UINT64_MAX % bound);
  uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return v % bound;
}

double Rng::next_double() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

uint64_t Rng::uniform(uint64_t lo, uint64_t hi) {
  if (hi <= lo) return lo;
  return lo + next_below(hi - lo + 1);
}

double Rng::exponential(double mean) {
  double u;
  do {
    u = next_double();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

Rng Rng::split() { return Rng(next_u64()); }

}  // namespace erasmus::sim
