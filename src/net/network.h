// Simulated datagram network.
//
// Stands in for the paper's transports (UDP over Ethernet on the i.MX6;
// serial/radio links on MSP430-class devices). Delivery is scheduled on the
// shared EventQueue after a configurable latency; datagrams can be lost with
// a configurable probability, and a link filter lets the swarm layer impose
// a (time-varying) topology: a datagram is only delivered if the two nodes
// are connected at SEND time.
//
// The transport is deliberately insecure -- ERASMUS measurements are
// authenticated by MAC_K and need neither encryption nor a trusted channel
// (paper §3.2).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/bytes.h"
#include "sim/event_queue.h"
#include "sim/rng.h"

namespace erasmus::net {

using NodeId = uint32_t;

struct Datagram {
  NodeId src = 0;
  NodeId dst = 0;
  Bytes payload;
};

class Network {
 public:
  using Handler = std::function<void(const Datagram&)>;
  /// Returns true when src->dst is currently connected.
  using LinkFilter = std::function<bool(NodeId, NodeId)>;

  Network(sim::EventQueue& queue, sim::Duration latency,
          double loss_probability = 0.0, uint64_t seed = 1)
      : queue_(queue), latency_(latency), loss_probability_(loss_probability),
        rng_(seed) {}

  /// Registers a node; the handler runs at delivery time.
  NodeId add_node(Handler handler);

  /// Replaces a node's handler (e.g. when a device reboots).
  void set_handler(NodeId node, Handler handler);

  /// Imposes a connectivity predicate evaluated at send time; nullptr means
  /// full connectivity.
  void set_link_filter(LinkFilter filter) { filter_ = std::move(filter); }

  /// Radio-energy tap, invoked at send time: once with tx=true per
  /// physical transmission (a broadcast keys the radio ONCE however many
  /// destinations it reaches), and once with tx=false per destination the
  /// datagram is actually delivered to. Kept as a generic callback so the
  /// network stays ignorant of who meters what; the energy layer installs
  /// one that charges DeviceMeters. nullptr = no metering (zero cost).
  using EnergyTap = std::function<void(NodeId node, size_t bytes, bool tx)>;
  void set_energy_tap(EnergyTap tap) { energy_tap_ = std::move(tap); }

  /// Queues a datagram for delivery after the network latency. Silently
  /// drops it when the nodes are disconnected or the loss draw fires
  /// (datagram networks do not report loss to the sender).
  void send(NodeId src, NodeId dst, Bytes payload);

  /// Sends one payload to many destinations: one independent loss/link
  /// draw and one delivery event per destination, in `dsts` order --
  /// byte-identical to the equivalent send() loop, but the payload is
  /// only copied for destinations actually delivered to. Used for
  /// batched collection-round dispatch and overlay radio floods.
  void broadcast(NodeId src, const std::vector<NodeId>& dsts,
                 ByteView payload);

  /// Replaces the per-datagram loss probability mid-run (scheduled
  /// loss-burst fault injection, src/adversary). Takes effect at the next
  /// admit draw; the RNG stream is untouched, so a burst schedule is as
  /// deterministic as a fixed loss rate.
  void set_loss_probability(double p) { loss_probability_ = p; }
  double loss_probability() const { return loss_probability_; }

  sim::Duration latency() const { return latency_; }
  /// The owning queue's current instant (route-freshness decisions of
  /// higher layers key off send-time, which is this clock).
  sim::Time now() const { return queue_.now(); }

  struct Stats {
    uint64_t sent = 0;
    uint64_t delivered = 0;
    uint64_t dropped_loss = 0;
    uint64_t dropped_disconnected = 0;
    /// Payload bytes offered to the medium (counted per destination
    /// attempt, delivered or not -- the radio transmits either way).
    uint64_t bytes_sent = 0;
    /// PHYSICAL radio bytes: tx counted once per transmission like the
    /// energy tap (a broadcast keys the radio once, however many
    /// destinations it reaches), rx per destination actually delivered
    /// to. The honest air-interface load -- bytes_sent scales with the
    /// destination count and would overstate a flood's radio cost.
    /// (node_stats() keeps these zero: per-destination attribution of a
    /// shared transmission is exactly the double count avoided here.)
    uint64_t phys_tx_bytes = 0;
    uint64_t phys_rx_bytes = 0;
  };
  const Stats& stats() const { return stats_; }
  /// Delivery stats for traffic TO one node (what did device d actually
  /// receive / lose?) -- the per-device observability fleet debugging
  /// needs.
  const Stats& node_stats(NodeId dst) const;

 private:
  /// Stats + link-filter + loss draw for one (src, dst); true = deliver.
  bool admit(NodeId src, NodeId dst, size_t payload_bytes);
  void deliver(Datagram dgram);

  sim::EventQueue& queue_;
  sim::Duration latency_;
  double loss_probability_;
  sim::Rng rng_;
  LinkFilter filter_;
  EnergyTap energy_tap_;
  std::vector<Handler> handlers_;
  Stats stats_;
  std::vector<Stats> node_stats_;  // indexed by destination
};

}  // namespace erasmus::net
