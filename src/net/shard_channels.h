// ShardChannels: explicit cross-domain message channels for barrier-phase
// parallelism.
//
// The fleet runner partitions radio endpoints into a FIXED number of
// virtual domains (independent of thread count -- that independence is
// what keeps every counter below byte-identical at 1/2/8 threads). During
// a parallel serve phase each domain's worker is the SOLE producer onto
// the channels leaving its domain; the consumer drains only after the
// phase joins. One channel per ordered (src, dst) domain pair, so a
// channel is single-producer/single-consumer with the join as the
// synchronization point -- no locks, no atomics, just phase discipline.
//
// Determinism: push() stamps each frame with a per-channel sequence
// number (arrival order within its channel), and drain() replays frames
// in ascending (src domain, sequence) order -- a pure function of the
// frames pushed, never of which worker ran which domain or how the
// phases interleaved in wall time.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/bytes.h"
#include "net/network.h"

namespace erasmus::net {

/// One message crossing (or staying inside) a domain boundary.
struct ChannelFrame {
  NodeId src = 0;      // producing endpoint
  uint32_t tag = 0;    // caller-defined type discriminator
  uint64_t seq = 0;    // per-channel sequence, assigned by push()
  uint64_t aux = 0;    // caller-defined payload (e.g. processing ns)
  Bytes payload;
};

class ShardChannels {
 public:
  explicit ShardChannels(size_t domains);

  size_t domains() const { return domains_; }

  /// Appends `frame` to the (src_domain -> dst_domain) channel and stamps
  /// its sequence number. Producer side of the SPSC contract: during a
  /// parallel phase only src_domain's worker may push with this
  /// src_domain (any dst), and nobody may drain.
  void push(size_t src_domain, size_t dst_domain, ChannelFrame frame);

  /// Drains every channel addressed to `dst_domain` in (src domain,
  /// sequence) order and clears them (capacity retained). Consumer side:
  /// call only between phases, after the producers joined.
  void drain(size_t dst_domain,
             const std::function<void(const ChannelFrame&)>& fn);

  /// How many frames sit undrained on channels into `dst_domain`.
  size_t pending(size_t dst_domain) const;

  /// Cumulative traffic accounting, updated at drain time (the single-
  /// consumer side), so producers never touch shared counters.
  struct Counters {
    uint64_t frames_local = 0;  // drained frames with src domain == dst
    uint64_t frames_cross = 0;  // drained frames that crossed domains
    uint64_t drains = 0;        // drain() calls that saw >= 1 frame
  };
  const Counters& counters() const { return counters_; }

 private:
  struct Channel {
    std::vector<ChannelFrame> frames;
    uint64_t next_seq = 0;
  };

  size_t index(size_t src, size_t dst) const { return src * domains_ + dst; }

  size_t domains_;
  std::vector<Channel> channels_;  // [src * domains_ + dst]
  Counters counters_;
};

}  // namespace erasmus::net
