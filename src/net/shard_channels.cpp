#include "net/shard_channels.h"

#include <stdexcept>

namespace erasmus::net {

ShardChannels::ShardChannels(size_t domains) : domains_(domains) {
  if (domains == 0) {
    throw std::invalid_argument("ShardChannels: need >= 1 domain");
  }
  channels_.resize(domains_ * domains_);
}

void ShardChannels::push(size_t src_domain, size_t dst_domain,
                         ChannelFrame frame) {
  if (src_domain >= domains_ || dst_domain >= domains_) {
    throw std::out_of_range("ShardChannels: domain out of range");
  }
  Channel& channel = channels_[index(src_domain, dst_domain)];
  frame.seq = channel.next_seq++;
  channel.frames.push_back(std::move(frame));
}

void ShardChannels::drain(size_t dst_domain,
                          const std::function<void(const ChannelFrame&)>& fn) {
  if (dst_domain >= domains_) {
    throw std::out_of_range("ShardChannels: domain out of range");
  }
  bool any = false;
  for (size_t src = 0; src < domains_; ++src) {
    Channel& channel = channels_[index(src, dst_domain)];
    if (channel.frames.empty()) continue;
    any = true;
    for (const ChannelFrame& frame : channel.frames) {
      if (src == dst_domain) {
        ++counters_.frames_local;
      } else {
        ++counters_.frames_cross;
      }
      fn(frame);
    }
    channel.frames.clear();  // capacity retained for the next phase
  }
  if (any) ++counters_.drains;
}

size_t ShardChannels::pending(size_t dst_domain) const {
  if (dst_domain >= domains_) {
    throw std::out_of_range("ShardChannels: domain out of range");
  }
  size_t n = 0;
  for (size_t src = 0; src < domains_; ++src) {
    n += channels_[index(src, dst_domain)].frames.size();
  }
  return n;
}

}  // namespace erasmus::net
