#include "net/network.h"

#include <stdexcept>

namespace erasmus::net {

NodeId Network::add_node(Handler handler) {
  handlers_.push_back(std::move(handler));
  return static_cast<NodeId>(handlers_.size() - 1);
}

void Network::set_handler(NodeId node, Handler handler) {
  if (node >= handlers_.size()) {
    throw std::out_of_range("Network: unknown node");
  }
  handlers_[node] = std::move(handler);
}

void Network::send(NodeId src, NodeId dst, Bytes payload) {
  if (src >= handlers_.size() || dst >= handlers_.size()) {
    throw std::out_of_range("Network: unknown endpoint");
  }
  ++stats_.sent;
  if (filter_ && !filter_(src, dst)) {
    ++stats_.dropped_disconnected;
    return;
  }
  if (loss_probability_ > 0.0 && rng_.chance(loss_probability_)) {
    ++stats_.dropped_loss;
    return;
  }
  queue_.schedule_after(
      latency_, [this, d = Datagram{src, dst, std::move(payload)}] {
        ++stats_.delivered;
        if (handlers_[d.dst]) handlers_[d.dst](d);
      });
}

}  // namespace erasmus::net
