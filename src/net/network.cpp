#include "net/network.h"

#include <stdexcept>

namespace erasmus::net {

NodeId Network::add_node(Handler handler) {
  handlers_.push_back(std::move(handler));
  node_stats_.emplace_back();
  return static_cast<NodeId>(handlers_.size() - 1);
}

void Network::set_handler(NodeId node, Handler handler) {
  if (node >= handlers_.size()) {
    throw std::out_of_range("Network: unknown node");
  }
  handlers_[node] = std::move(handler);
}

bool Network::admit(NodeId src, NodeId dst, size_t payload_bytes) {
  ++stats_.sent;
  stats_.bytes_sent += payload_bytes;
  ++node_stats_[dst].sent;
  node_stats_[dst].bytes_sent += payload_bytes;
  if (filter_ && !filter_(src, dst)) {
    ++stats_.dropped_disconnected;
    ++node_stats_[dst].dropped_disconnected;
    return false;
  }
  if (loss_probability_ > 0.0 && rng_.chance(loss_probability_)) {
    ++stats_.dropped_loss;
    ++node_stats_[dst].dropped_loss;
    return false;
  }
  return true;
}

void Network::deliver(Datagram dgram) {
  queue_.schedule_after(latency_, [this, d = std::move(dgram)] {
    ++stats_.delivered;
    ++node_stats_[d.dst].delivered;
    if (handlers_[d.dst]) handlers_[d.dst](d);
  });
}

void Network::send(NodeId src, NodeId dst, Bytes payload) {
  if (src >= handlers_.size() || dst >= handlers_.size()) {
    throw std::out_of_range("Network: unknown endpoint");
  }
  stats_.phys_tx_bytes += payload.size();
  if (energy_tap_) energy_tap_(src, payload.size(), /*tx=*/true);
  if (!admit(src, dst, payload.size())) return;
  stats_.phys_rx_bytes += payload.size();
  if (energy_tap_) energy_tap_(dst, payload.size(), /*tx=*/false);
  deliver(Datagram{src, dst, std::move(payload)});
}

void Network::broadcast(NodeId src, const std::vector<NodeId>& dsts,
                        ByteView payload) {
  if (src >= handlers_.size()) {
    throw std::out_of_range("Network: unknown endpoint");
  }
  // One physical transmission: the sender's radio is charged once, not
  // per destination (Stats::bytes_sent stays per-attempt -- it counts
  // offered load, the tap counts joules).
  if (!dsts.empty()) stats_.phys_tx_bytes += payload.size();
  if (energy_tap_ && !dsts.empty()) {
    energy_tap_(src, payload.size(), /*tx=*/true);
  }
  for (const NodeId dst : dsts) {
    if (dst >= handlers_.size()) {
      throw std::out_of_range("Network: unknown endpoint");
    }
    // Same per-destination draw and event order as the equivalent send()
    // loop -- but the payload is only copied for destinations that are
    // actually delivered to, which is what makes swarm-wide radio floods
    // (1 sender x N destinations, most out of range) affordable.
    if (!admit(src, dst, payload.size())) continue;
    stats_.phys_rx_bytes += payload.size();
    if (energy_tap_) energy_tap_(dst, payload.size(), /*tx=*/false);
    deliver(Datagram{src, dst, Bytes(payload.begin(), payload.end())});
  }
}

const Network::Stats& Network::node_stats(NodeId dst) const {
  if (dst >= node_stats_.size()) {
    throw std::out_of_range("Network: unknown node");
  }
  return node_stats_[dst];
}

}  // namespace erasmus::net
