#include "net/network.h"

#include <stdexcept>

namespace erasmus::net {

NodeId Network::add_node(Handler handler) {
  handlers_.push_back(std::move(handler));
  node_stats_.emplace_back();
  return static_cast<NodeId>(handlers_.size() - 1);
}

void Network::set_handler(NodeId node, Handler handler) {
  if (node >= handlers_.size()) {
    throw std::out_of_range("Network: unknown node");
  }
  handlers_[node] = std::move(handler);
}

void Network::send(NodeId src, NodeId dst, Bytes payload) {
  if (src >= handlers_.size() || dst >= handlers_.size()) {
    throw std::out_of_range("Network: unknown endpoint");
  }
  ++stats_.sent;
  ++node_stats_[dst].sent;
  if (filter_ && !filter_(src, dst)) {
    ++stats_.dropped_disconnected;
    ++node_stats_[dst].dropped_disconnected;
    return;
  }
  if (loss_probability_ > 0.0 && rng_.chance(loss_probability_)) {
    ++stats_.dropped_loss;
    ++node_stats_[dst].dropped_loss;
    return;
  }
  queue_.schedule_after(
      latency_, [this, d = Datagram{src, dst, std::move(payload)}] {
        ++stats_.delivered;
        ++node_stats_[d.dst].delivered;
        if (handlers_[d.dst]) handlers_[d.dst](d);
      });
}

void Network::broadcast(NodeId src, const std::vector<NodeId>& dsts,
                        ByteView payload) {
  for (const NodeId dst : dsts) {
    send(src, dst, Bytes(payload.begin(), payload.end()));
  }
}

const Network::Stats& Network::node_stats(NodeId dst) const {
  if (dst >= node_stats_.size()) {
    throw std::out_of_range("Network: unknown node");
  }
  return node_stats_[dst];
}

}  // namespace erasmus::net
