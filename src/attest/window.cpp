#include "attest/window.h"

#include <algorithm>

namespace erasmus::attest {

namespace {
size_t clamp_window(size_t value, const WindowConfig& config) {
  return std::clamp(value, config.floor, config.ceiling);
}
}  // namespace

WindowController::WindowController(const WindowConfig& config)
    : config_(config) {
  window_ = config_.adaptive ? clamp_window(config_.initial, config_)
                             : std::max<size_t>(1, config_.fixed);
  ssthresh_ = config_.ceiling;
  // The first congestion signal may back off immediately; subsequent
  // ones are rate-limited against the window size.
  events_since_backoff_ = window_;
  begin_round();
}

void WindowController::on_response() {
  note_event();  // responses re-open the burst guard like any other event
  if (!config_.adaptive) return;
  if (window_ < ssthresh_) {
    // Slow start: +1 per response doubles the window per round trip.
    window_ = clamp_window(window_ + 1, config_);
    ack_credit_ = 0;
  } else if (++ack_credit_ >= window_) {
    ack_credit_ = 0;
    window_ = clamp_window(window_ + config_.additive_increase, config_);
  }
  round_max_ = std::max(round_max_, window_);
}

void WindowController::cut_window(double factor) {
  cut_seq_ = send_seq_;  // everything in flight belongs to this cut
  events_since_backoff_ = 0;
  ack_credit_ = 0;
  const auto cut =
      static_cast<size_t>(static_cast<double>(window_) * factor);
  window_ = clamp_window(cut, config_);
  ssthresh_ = window_;
  round_min_ = std::min(round_min_, window_);
}

bool WindowController::on_loss(uint64_t send_seq) {
  note_event();
  if (!config_.adaptive) return false;
  // Recovery epoch: a timeout of anything sent at or before the last cut
  // is the SAME loss event that caused the cut (one lost flood times out
  // a whole window of correlated sessions). Only a post-cut attempt's
  // timeout is fresh evidence.
  if (send_seq <= cut_seq_) return false;
  cut_window(config_.loss_decrease);
  return true;
}

bool WindowController::on_congestion() {
  note_event();
  if (!config_.adaptive) return false;
  if (events_since_backoff_ < window_) return false;  // same saturation
  cut_window(config_.congestion_decrease);
  return true;
}

void WindowController::begin_round() {
  if (config_.adaptive && round_max_ > 0) {
    // The window itself carries over (the fleet and field did not
    // change), but remember the capacity the last round reached: if loss
    // bursts crushed the window late in the round, rediscovery should be
    // exponential up to half that capacity, not additive from the floor.
    ssthresh_ = std::max(ssthresh_, round_max_ / 2);
  }
  round_min_ = window_;
  round_max_ = window_;
}

}  // namespace erasmus::attest
