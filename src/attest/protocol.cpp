#include "attest/protocol.h"

#include "common/serde.h"

namespace erasmus::attest {

namespace {

void write_measurement(ByteWriter& w, const Measurement& m) {
  w.u64(m.timestamp);
  w.var_bytes(m.digest);
  w.var_bytes(m.mac);
}

std::optional<Measurement> read_measurement(ByteReader& r) {
  Measurement m;
  m.timestamp = r.u64();
  m.digest = r.var_bytes();
  m.mac = r.var_bytes();
  if (!r.ok()) return std::nullopt;
  return m;
}

}  // namespace

Bytes CollectRequest::serialize() const {
  ByteWriter w;
  w.u32(k);
  return w.take();
}

std::optional<CollectRequest> CollectRequest::deserialize(ByteView data) {
  ByteReader r(data);
  CollectRequest req;
  req.k = r.u32();
  if (!r.done()) return std::nullopt;
  return req;
}

Bytes CollectResponse::serialize() const {
  ByteWriter w;
  w.u32(static_cast<uint32_t>(measurements.size()));
  for (const auto& m : measurements) write_measurement(w, m);
  return w.take();
}

std::optional<CollectResponse> CollectResponse::deserialize(ByteView data) {
  ByteReader r(data);
  const uint32_t count = r.u32();
  CollectResponse resp;
  // The count is attacker-controlled: never pre-allocate from it. Each
  // iteration consumes >= 16 bytes, so a lying header fails fast below.
  for (uint32_t i = 0; i < count; ++i) {
    auto m = read_measurement(r);
    if (!m) return std::nullopt;
    resp.measurements.push_back(std::move(*m));
  }
  if (!r.done()) return std::nullopt;
  return resp;
}

Bytes OdRequest::mac_input(uint64_t treq, uint32_t k) {
  ByteWriter w;
  w.u64(treq);
  w.u32(k);
  return w.take();
}

Bytes OdRequest::serialize() const {
  ByteWriter w;
  w.u64(treq);
  w.u32(k);
  w.var_bytes(mac);
  return w.take();
}

std::optional<OdRequest> OdRequest::deserialize(ByteView data) {
  ByteReader r(data);
  OdRequest req;
  req.treq = r.u64();
  req.k = r.u32();
  req.mac = r.var_bytes();
  if (!r.done()) return std::nullopt;
  return req;
}

Bytes OdResponse::serialize() const {
  ByteWriter w;
  write_measurement(w, fresh);
  w.u32(static_cast<uint32_t>(history.size()));
  for (const auto& m : history) write_measurement(w, m);
  return w.take();
}

std::optional<OdResponse> OdResponse::deserialize(ByteView data) {
  ByteReader r(data);
  OdResponse resp;
  auto fresh = read_measurement(r);
  if (!fresh) return std::nullopt;
  resp.fresh = std::move(*fresh);
  const uint32_t count = r.u32();
  for (uint32_t i = 0; i < count; ++i) {
    auto m = read_measurement(r);
    if (!m) return std::nullopt;
    resp.history.push_back(std::move(*m));
  }
  if (!r.done()) return std::nullopt;
  return resp;
}

Bytes frame(MsgType type, ByteView body) {
  ByteWriter w;
  w.u8(static_cast<uint8_t>(type));
  w.raw(body);
  return w.take();
}

std::optional<std::pair<MsgType, ByteView>> unframe(ByteView data) {
  if (data.empty()) return std::nullopt;
  const uint8_t tag = data[0];
  if (tag < static_cast<uint8_t>(MsgType::kCollectRequest) ||
      tag > static_cast<uint8_t>(MsgType::kOdResponse)) {
    return std::nullopt;
  }
  return std::make_pair(static_cast<MsgType>(tag), data.subspan(1));
}

}  // namespace erasmus::attest
