#include "attest/prover.h"

#include <algorithm>

namespace erasmus::attest {

Prover::Prover(sim::EventQueue& queue, hw::SecurityArch& arch,
               hw::RegionId attested_region, hw::RegionId store_region,
               std::unique_ptr<Scheduler> scheduler, ProverConfig config)
    : queue_(queue), arch_(arch), attested_region_(attested_region),
      store_(arch.memory(), store_region, config.algo),
      scheduler_(std::move(scheduler)), config_(std::move(config)),
      rroc_(queue, config_.rroc_tick,
            config_.rroc_writable_for_attack_demo
                ? hw::Rroc::WriteLine::kWritableForAttackDemo
                : hw::Rroc::WriteLine::kRemoved),
      // The compare register is only software-readable when the schedule is
      // public anyway; irregular schedules require it to be read-protected
      // (paper §3.5: "the timer itself must be read-protected").
      timer_(queue, /*compare_readable=*/scheduler_->predictable_without_key()) {
  if (!scheduler_) {
    throw std::invalid_argument("Prover: scheduler required");
  }
}

uint64_t Prover::attested_bytes() const {
  return arch_.memory().region_size(attested_region_);
}

void Prover::start(std::optional<sim::Duration> initial_offset) {
  running_ = true;
  const sim::Duration delay =
      initial_offset.value_or(scheduler_->next_interval(rroc_.read()));
  nominal_due_ = queue_.now() + delay;
  timer_.arm(delay, [this] { on_timer(); });
}

void Prover::stop() {
  running_ = false;
  timer_.cancel();
}

std::optional<std::pair<sim::Time, sim::Time>> Prover::task_covering(
    sim::Time at) const {
  for (const auto& [begin, end] : critical_tasks_) {
    if (at >= begin && at < end) return std::make_pair(begin, end);
  }
  return std::nullopt;
}

sim::Duration Prover::overlap_with_tasks(sim::Time begin, sim::Time end) const {
  uint64_t overlap_ns = 0;
  for (const auto& [tb, te] : critical_tasks_) {
    const uint64_t lo = std::max(begin.ns(), tb.ns());
    const uint64_t hi = std::min(end.ns(), te.ns());
    if (hi > lo) overlap_ns += hi - lo;
  }
  return sim::Duration(overlap_ns);
}

void Prover::add_critical_task(sim::Time begin, sim::Duration length) {
  critical_tasks_.emplace_back(begin, begin + length);
}

uint64_t Prover::slot_index_for(uint64_t t_ticks) const {
  // Regular schedules use the paper's stateless mapping i = floor(t / T_M)
  // mod n; irregular schedules fall back to the measurement sequence number
  // (the stateless form needs a fixed T_M).
  if (const auto* reg = dynamic_cast<const RegularScheduler*>(scheduler_.get())) {
    const uint64_t tm_ticks = reg->tm() / config_.rroc_tick;
    return t_ticks / std::max<uint64_t>(tm_ticks, 1);
  }
  if (const auto* len = dynamic_cast<const LenientScheduler*>(scheduler_.get());
      len && len->predictable_without_key()) {
    const uint64_t tm_ticks = len->nominal_period() / config_.rroc_tick;
    return t_ticks / std::max<uint64_t>(tm_ticks, 1);
  }
  return seq_;
}

void Prover::on_timer() {
  if (!running_) return;
  const sim::Time now = queue_.now();

  if (const auto task = task_covering(now)) {
    switch (config_.conflict_policy) {
      case ConflictPolicy::kMeasureAnyway:
        break;  // proceed; interference is accounted below
      case ConflictPolicy::kAbortAndReschedule: {
        ++stats_.aborted;
        // Lenient scheduling (§5): retry at the end of the running task,
        // clamped to the end of the current window when the scheduler is
        // lenient (w * T_M past the nominal due time).
        sim::Time retry = task->second;
        if (const auto* len =
                dynamic_cast<const LenientScheduler*>(scheduler_.get())) {
          const sim::Time window_end = nominal_due_ + len->window_slack();
          if (retry > window_end) retry = window_end;
        }
        if (retry <= now) {
          break;  // window exhausted: measure now despite the task
        }
        const sim::Duration slip = retry - nominal_due_;
        stats_.max_schedule_slip = std::max(stats_.max_schedule_slip, slip);
        timer_.arm(retry - now, [this] { on_timer(); });
        return;
      }
      case ConflictPolicy::kSkip:
        ++stats_.skipped;
        schedule_next(rroc_.read());
        return;
    }
  }

  perform_measurement();
  schedule_next(rroc_.read());
}

void Prover::perform_measurement() {
  const sim::Time now = queue_.now();
  const uint64_t t = rroc_.read();

  const sim::Duration cost =
      config_.profile.measurement_time(config_.algo, attested_bytes());

  const Measurement m =
      compute_measurement_protected(arch_, config_.algo, attested_region_, t);

  const uint64_t index = slot_index_for(t);
  store_.put(index, m);
  latest_index_ = index;
  ++seq_;

  busy_until_ = std::max(busy_until_, now) + cost;
  ++stats_.measurements;
  stats_.total_measurement_time = stats_.total_measurement_time + cost;
  stats_.task_interference =
      stats_.task_interference + overlap_with_tasks(now, now + cost);

  if (measurement_observer_) measurement_observer_(now, t);
}

void Prover::schedule_next(uint64_t t_ticks) {
  if (!running_) return;
  const sim::Duration interval = scheduler_->next_interval(t_ticks);
  nominal_due_ = queue_.now() + interval;
  timer_.arm(interval, [this] { on_timer(); });
}

Prover::CollectResult Prover::handle_collect(const CollectRequest& req) {
  const sim::Time now = queue_.now();
  ++stats_.collections;

  // If a measurement is in flight the request queues behind it.
  sim::Duration wait;
  if (busy_until_ > now) wait = busy_until_ - now;

  size_t k = req.k;
  if (k > store_.capacity()) k = store_.capacity();  // Fig. 2: k = n

  CollectResult result;
  if (any_measurement_taken()) {
    result.response.measurements = store_.latest(latest_index_, k);
  }
  // Collection is computation-free: buffer read + packet construct + send.
  result.processing = wait +
                      config_.profile.store_read_time(store_.bytes_for(k)) +
                      config_.profile.packet_construct +
                      config_.profile.packet_send;
  return result;
}

Prover::OdResult Prover::handle_od(const OdRequest& req) {
  const sim::Time now = queue_.now();
  OdResult result;

  sim::Duration wait;
  if (busy_until_ > now) wait = busy_until_ - now;

  // SMART+ anti-DoS: check freshness, then authenticate, BEFORE doing any
  // expensive work. Both checks happen inside the protected environment
  // (the MAC needs K).
  const uint64_t now_ticks = rroc_.read();
  bool fresh = req.treq <= now_ticks &&
               now_ticks - req.treq <= config_.od_freshness_window_ticks &&
               req.treq > last_od_treq_;
  bool authentic = false;
  if (fresh) {
    arch_.run_protected([&](hw::SecurityArch::ProtectedContext& ctx) {
      authentic = crypto::Mac::verify(config_.algo, ctx.key(),
                                      OdRequest::mac_input(req.treq, req.k),
                                      req.mac);
    });
  }
  const sim::Duration auth_cost = config_.profile.request_auth_time();

  if (!fresh || !authentic) {
    ++stats_.od_rejected;
    result.processing = wait + auth_cost;
    return result;  // silent abort (Fig. 4: "if not OK: abort")
  }
  last_od_treq_ = req.treq;
  ++stats_.od_accepted;

  // Compute the fresh measurement M_0 in real time -- the expensive step
  // ERASMUS's plain collection avoids.
  const sim::Duration measure_cost =
      config_.profile.measurement_time(config_.algo, attested_bytes());
  OdResponse resp;
  resp.fresh = compute_measurement_protected(arch_, config_.algo,
                                             attested_region_, now_ticks);
  // ERASMUS+OD (k > 0): attach the stored history. Does not count as a
  // scheduled measurement, so the rolling buffer is untouched.
  size_t k = req.k;
  if (k > store_.capacity()) k = store_.capacity();
  if (k > 0 && any_measurement_taken()) {
    resp.history = store_.latest(latest_index_, k);
  }

  busy_until_ = std::max(busy_until_, now) + auth_cost + measure_cost;
  stats_.total_measurement_time =
      stats_.total_measurement_time + measure_cost;

  result.response = std::move(resp);
  result.processing = wait + auth_cost + measure_cost +
                      config_.profile.store_read_time(store_.bytes_for(k)) +
                      config_.profile.packet_construct +
                      config_.profile.packet_send;
  return result;
}

void Prover::bind(net::Network& network, net::NodeId id) {
  network_ = &network;
  node_id_ = id;
  network.set_handler(id, [this](const net::Datagram& dgram) {
    const auto framed = unframe(dgram.payload);
    if (!framed) return;
    const auto [type, body] = *framed;
    Bytes reply;
    sim::Duration processing;
    switch (type) {
      case MsgType::kCollectRequest: {
        const auto req = CollectRequest::deserialize(body);
        if (!req) return;
        auto res = handle_collect(*req);
        reply = frame(MsgType::kCollectResponse, res.response.serialize());
        processing = res.processing;
        break;
      }
      case MsgType::kOdRequest: {
        const auto req = OdRequest::deserialize(body);
        if (!req) return;
        auto res = handle_od(*req);
        if (!res.response) return;  // aborted: no reply at all
        reply = frame(MsgType::kOdResponse, res.response->serialize());
        processing = res.processing;
        break;
      }
      default:
        return;  // responses are not expected at the prover
    }
    const net::NodeId src = dgram.src;
    queue_.schedule_after(processing, [this, src, reply = std::move(reply)] {
      network_->send(node_id_, src, reply);
    });
  });
}

}  // namespace erasmus::attest
