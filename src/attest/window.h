// AIMD in-flight window control for the attestation service.
//
// The service's dispatch window decides how many collection sessions may
// be in flight at once. A fixed window is either too small (a
// million-device round serialises behind it) or too large (a lossy,
// multi-hop network drowns in requests it will mostly drop). The
// WindowController makes the window adaptive, TCP-style:
//
//  * slow start  -- every on-time response grows the window by one until
//    it crosses the slow-start threshold, so an idle service discovers
//    the network's capacity in O(log fleet) round trips;
//  * congestion avoidance -- past the threshold, growth is additive: one
//    window's worth of responses buys `additive_increase` more slots;
//  * multiplicative backoff -- a timeout (loss) or a relay-queue
//    saturation signal halves the window (and the threshold), clamped to
//    the floor. Loss backoffs are guarded by recovery epochs (TCP Reno's
//    trick): every dispatched attempt is stamped with a send sequence,
//    and only the timeout of an attempt sent AFTER the last cut may cut
//    again -- so the correlated timeout wave of one lost flood, however
//    wide the window was, is charged as ONE loss event. Congestion
//    signals (which cannot be tied to a send) instead rate-limit to one
//    backoff per window's worth of events.
//
// Everything is integer/deterministic: the controller is driven purely by
// the service's event order, which the sharded runner keeps
// thread-count-independent, so the 1-vs-8-thread byte-identity invariant
// survives adaptivity.
#pragma once

#include <cstddef>
#include <cstdint>

namespace erasmus::attest {

struct WindowConfig {
  /// false: the window stays at `fixed` forever (the pre-adaptive
  /// behaviour). true: AIMD over [floor, ceiling] starting at `initial`.
  bool adaptive = false;
  size_t fixed = 64;

  size_t initial = 16;
  size_t floor = 4;
  size_t ceiling = 4096;
  /// Congestion-avoidance growth per full window of responses.
  size_t additive_increase = 1;
  /// Backoff factor on a timeout (0 < f < 1). Gentler than the
  /// congestion cut (TCP-Westwood flavour): on a lossy multi-hop radio a
  /// timeout is usually random loss, not queue pressure, and the
  /// explicit queue-occupancy signal below covers the real thing.
  double loss_decrease = 0.7;
  /// Backoff factor on a relay-queue saturation report.
  double congestion_decrease = 0.5;
  /// Relay queue occupancy (0..1, from Transport::take_congestion()) at or
  /// above which the service damps the window. Flood collection keeps
  /// root-adjacent queues legitimately busy, so only near-overflow
  /// occupancy is treated as congestion.
  double congestion_threshold = 0.9;
};

class WindowController {
 public:
  explicit WindowController(const WindowConfig& config);

  /// Current dispatch window (slots).
  size_t window() const { return window_; }
  bool adaptive() const { return config_.adaptive; }

  /// Stamps one dispatched attempt; the returned sequence must be handed
  /// back to on_loss() if that attempt times out.
  uint64_t on_send() { return ++send_seq_; }
  /// An on-time response arrived: slow-start or additive growth.
  void on_response();
  /// The attempt stamped `send_seq` timed out. Returns true when the
  /// window was actually cut: only attempts sent after the previous cut
  /// can cut again (recovery epoch), so one lost flood's correlated
  /// timeout wave is one loss event.
  bool on_loss(uint64_t send_seq);
  /// Relay queues report saturation; same multiplicative cut, but
  /// rate-limited to one backoff per window's worth of events (a
  /// congestion report cannot be attributed to a send).
  bool on_congestion();

  /// Starts a round: resets the per-round min/max trackers and, in
  /// adaptive mode, folds the previous round's discovered capacity into
  /// the slow-start threshold -- so a window crushed by late-round loss
  /// bursts regrows exponentially next round instead of crawling
  /// additively from the floor.
  void begin_round();
  /// Smallest/largest window since begin_round() (inclusive of the
  /// starting value).
  size_t round_min() const { return round_min_; }
  size_t round_max() const { return round_max_; }

 private:
  void cut_window(double factor);
  void note_event() { ++events_since_backoff_; }

  WindowConfig config_;
  size_t window_ = 0;
  size_t ssthresh_ = 0;      // slow start below this
  size_t ack_credit_ = 0;    // responses toward the next additive step
  uint64_t send_seq_ = 0;    // attempts stamped so far
  uint64_t cut_seq_ = 0;     // send_seq_ at the last cut (epoch boundary)
  uint64_t events_since_backoff_ = 0;
  size_t round_min_ = 0;
  size_t round_max_ = 0;
};

}  // namespace erasmus::attest
