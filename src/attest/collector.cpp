#include "attest/collector.h"

namespace erasmus::attest {

Collector::Collector(sim::EventQueue& queue, net::Network& network,
                     net::NodeId self, net::NodeId prover_node,
                     Verifier& verifier, AuditLog& log, CollectorConfig config)
    : queue_(queue), network_(network), self_(self),
      prover_node_(prover_node), verifier_(verifier), log_(log),
      config_(config) {
  network_.set_handler(self_,
                       [this](const net::Datagram& d) { on_datagram(d); });
}

void Collector::start() {
  running_ = true;
  next_round_event_ =
      queue_.schedule_after(config_.tc, [this] { begin_round(); });
}

void Collector::stop() {
  running_ = false;
  if (timeout_event_) queue_.cancel(*timeout_event_);
  if (next_round_event_) queue_.cancel(*next_round_event_);
  timeout_event_.reset();
  next_round_event_.reset();
}

void Collector::begin_round() {
  if (!running_) return;
  ++stats_.rounds;
  attempts_this_round_ = 0;
  awaiting_response_ = true;
  send_request();
}

void Collector::send_request() {
  ++attempts_this_round_;
  network_.send(self_, prover_node_,
                frame(MsgType::kCollectRequest,
                      CollectRequest{config_.k}.serialize()));
  timeout_event_ = queue_.schedule_after(config_.response_timeout,
                                         [this] { on_timeout(); });
}

void Collector::on_timeout() {
  timeout_event_.reset();
  if (!running_ || !awaiting_response_) return;
  if (attempts_this_round_ <= config_.max_retries) {
    ++stats_.retries;
    send_request();
    return;
  }
  // Retry budget exhausted: the device is unreachable this round. For an
  // unattended prover this itself is a QoA event worth logging.
  awaiting_response_ = false;
  ++stats_.unreachable_rounds;
  log_.record_unreachable(queue_.now());
  finish_round();
}

void Collector::on_datagram(const net::Datagram& dgram) {
  if (!awaiting_response_ || dgram.src != prover_node_) return;
  const auto framed = unframe(dgram.payload);
  if (!framed || framed->first != MsgType::kCollectResponse) return;
  const auto resp = CollectResponse::deserialize(framed->second);
  if (!resp) return;

  awaiting_response_ = false;
  if (timeout_event_) {
    queue_.cancel(*timeout_event_);
    timeout_event_.reset();
  }
  ++stats_.responses;
  log_.record(queue_.now(),
              verifier_.verify_collection(*resp, queue_.now(), config_.k));
  finish_round();
}

void Collector::finish_round() {
  if (!running_) return;
  next_round_event_ =
      queue_.schedule_after(config_.tc, [this] { begin_round(); });
}

}  // namespace erasmus::attest
