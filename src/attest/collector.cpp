#include "attest/collector.h"

namespace erasmus::attest {

namespace {

ServiceConfig to_service_config(const CollectorConfig& config) {
  ServiceConfig sc;
  sc.tc = config.tc;
  sc.k = config.k;
  sc.response_timeout = config.response_timeout;
  sc.max_retries = config.max_retries;
  sc.window.fixed = 1;  // one device, one session
  sc.kind = RoundKind::kCollect;
  sc.keep_audit = false;  // the caller's AuditLog is the record
  return sc;
}

}  // namespace

Collector::Collector(sim::EventQueue& queue, net::Network& network,
                     net::NodeId self, net::NodeId prover_node,
                     Verifier& verifier, AuditLog& log, CollectorConfig config)
    : transport_(network, self) {
  directory_.link(prover_node, &verifier.record());
  service_ = std::make_unique<AttestationService>(queue, transport_,
                                                  directory_,
                                                  to_service_config(config));
  service_->set_observer([&log](const AttestationService::SessionOutcome& o) {
    if (o.reachable) {
      log.record(o.at, o.report);
    } else {
      log.record_unreachable(o.at);
    }
  });
}

void Collector::start() { service_->start(); }

void Collector::stop() { service_->stop(); }

const Collector::Stats& Collector::stats() const {
  const AttestationService::Stats& s = service_->stats();
  stats_.rounds = s.rounds;
  stats_.responses = s.responses;
  stats_.retries = s.retries;
  stats_.unreachable_rounds = s.unreachable_sessions;
  return stats_;
}

}  // namespace erasmus::attest
