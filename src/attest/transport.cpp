#include "attest/transport.h"

#include "attest/prover.h"

namespace erasmus::attest {

void Transport::broadcast(const std::vector<net::NodeId>& peers, MsgType type,
                          ByteView body) {
  for (const net::NodeId peer : peers) send(peer, type, body);
}

NetworkTransport::NetworkTransport(net::Network& network, net::NodeId self)
    : network_(network), self_(self) {
  network_.set_handler(self_, [this](const net::Datagram& d) {
    const auto framed = unframe(d.payload);
    if (!framed) {
      // Not even a well-formed frame: drop here so the service only ever
      // sees typed messages.
      ++malformed_frames_;
      return;
    }
    if (receiver_) receiver_(d.src, framed->first, framed->second);
  });
}

NetworkTransport::~NetworkTransport() {
  network_.set_handler(self_, {});
}

void NetworkTransport::send(net::NodeId peer, MsgType type, ByteView body) {
  network_.send(self_, peer, frame(type, body));
}

void NetworkTransport::broadcast(const std::vector<net::NodeId>& peers,
                                 MsgType type, ByteView body) {
  network_.broadcast(self_, peers, frame(type, body));
}

void NetworkTransport::set_receiver(Receiver receiver) {
  receiver_ = std::move(receiver);
}

void DirectTransport::attach(net::NodeId node, Prover& prover) {
  provers_[node] = &prover;
}

void DirectTransport::serve_collect(net::NodeId peer,
                                    const CollectRequest& req) {
  last_processing_ = sim::Duration(0);
  const auto it = provers_.find(peer);
  if (it == provers_.end()) return;
  const auto res = it->second->handle_collect(req);
  last_processing_ = res.processing;
  if (receiver_) {
    receiver_(peer, MsgType::kCollectResponse, res.response.serialize());
  }
}

void DirectTransport::serve_od(net::NodeId peer, const OdRequest& req) {
  last_processing_ = sim::Duration(0);
  const auto it = provers_.find(peer);
  if (it == provers_.end()) return;
  const auto res = it->second->handle_od(req);
  last_processing_ = res.processing;
  if (res.response && receiver_) {
    receiver_(peer, MsgType::kOdResponse, res.response->serialize());
  }
}

void DirectTransport::send(net::NodeId peer, MsgType type, ByteView body) {
  last_processing_ = sim::Duration(0);
  if (type == MsgType::kCollectRequest) {
    const auto req = CollectRequest::deserialize(body);
    if (req) serve_collect(peer, *req);
    return;
  }
  if (type == MsgType::kOdRequest) {
    const auto req = OdRequest::deserialize(body);
    if (req) serve_od(peer, *req);
    return;
  }
  // Provers only serve requests; anything else is silently dropped.
}

void DirectTransport::broadcast(const std::vector<net::NodeId>& peers,
                                MsgType type, ByteView body) {
  // A round's batched dispatch carries one shared body (uniform k), so
  // decode it once and run a single dispatch loop instead of re-parsing
  // per peer -- observable behaviour stays identical to the send() loop.
  last_processing_ = sim::Duration(0);
  if (type == MsgType::kCollectRequest) {
    const auto req = CollectRequest::deserialize(body);
    if (!req) return;
    for (const net::NodeId peer : peers) serve_collect(peer, *req);
    return;
  }
  if (type == MsgType::kOdRequest) {
    const auto req = OdRequest::deserialize(body);
    if (!req) return;
    for (const net::NodeId peer : peers) serve_od(peer, *req);
    return;
  }
}

void DirectTransport::set_receiver(Receiver receiver) {
  receiver_ = std::move(receiver);
}

}  // namespace erasmus::attest
