#include "attest/transport.h"

#include <algorithm>
#include <stdexcept>

#include "attest/prover.h"

namespace erasmus::attest {

void Transport::broadcast(const std::vector<net::NodeId>& peers, MsgType type,
                          ByteView body) {
  for (const net::NodeId peer : peers) send(peer, type, body);
}

NetworkTransport::NetworkTransport(net::Network& network, net::NodeId self)
    : network_(network), self_(self) {
  network_.set_handler(self_, [this](const net::Datagram& d) {
    const auto framed = unframe(d.payload);
    if (!framed) {
      // Not even a well-formed frame: drop here so the service only ever
      // sees typed messages.
      ++malformed_frames_;
      return;
    }
    if (receiver_) receiver_(d.src, framed->first, framed->second);
  });
}

NetworkTransport::~NetworkTransport() {
  network_.set_handler(self_, {});
}

void NetworkTransport::send(net::NodeId peer, MsgType type, ByteView body) {
  network_.send(self_, peer, frame(type, body));
}

void NetworkTransport::broadcast(const std::vector<net::NodeId>& peers,
                                 MsgType type, ByteView body) {
  network_.broadcast(self_, peers, frame(type, body));
}

void NetworkTransport::set_receiver(Receiver receiver) {
  receiver_ = std::move(receiver);
}

void DirectTransport::attach(net::NodeId node, Prover& prover) {
  provers_[node] = &prover;
}

void DirectTransport::enable_batch_serve(common::ParallelExecutor& executor,
                                         size_t domains, net::NodeId sink) {
  if (provers_.empty()) {
    throw std::logic_error(
        "DirectTransport: enable_batch_serve before any attach");
  }
  net::NodeId lo = provers_.begin()->first;
  net::NodeId hi = lo;
  for (const auto& [node, prover] : provers_) {
    lo = std::min(lo, node);
    hi = std::max(hi, node);
  }
  executor_ = &executor;
  domain_base_ = lo;
  domain_span_ = static_cast<size_t>(hi - lo) + 1;
  // The domain count is a property of the FLEET, never of the thread
  // count: channel traffic (and everything derived from it) must be
  // byte-identical at any thread count, so the partition cannot follow
  // the executor's width.
  domains_ = std::min(domains, domain_span_);
  if (domains_ == 0) domains_ = 1;
  channels_ = std::make_unique<net::ShardChannels>(domains_);
  sink_domain_ = domain_of(sink);
}

size_t DirectTransport::domain_of(net::NodeId node) const {
  if (node < domain_base_) return 0;
  const size_t offset = static_cast<size_t>(node - domain_base_);
  if (offset >= domain_span_) return domains_ - 1;
  // Contiguous blocks over the attached id range.
  return offset * domains_ / domain_span_;
}

void DirectTransport::serve_collect(net::NodeId peer,
                                    const CollectRequest& req) {
  last_processing_ = sim::Duration(0);
  const auto it = provers_.find(peer);
  if (it == provers_.end()) return;
  const auto res = it->second->handle_collect(req);
  last_processing_ = res.processing;
  if (receiver_) {
    receiver_(peer, MsgType::kCollectResponse, res.response.serialize());
  }
}

void DirectTransport::serve_od(net::NodeId peer, const OdRequest& req) {
  last_processing_ = sim::Duration(0);
  const auto it = provers_.find(peer);
  if (it == provers_.end()) return;
  const auto res = it->second->handle_od(req);
  last_processing_ = res.processing;
  if (res.response && receiver_) {
    receiver_(peer, MsgType::kOdResponse, res.response->serialize());
  }
}

void DirectTransport::send(net::NodeId peer, MsgType type, ByteView body) {
  last_processing_ = sim::Duration(0);
  if (type == MsgType::kCollectRequest) {
    const auto req = CollectRequest::deserialize(body);
    if (req) serve_collect(peer, *req);
    return;
  }
  if (type == MsgType::kOdRequest) {
    const auto req = OdRequest::deserialize(body);
    if (req) serve_od(peer, *req);
    return;
  }
  // Provers only serve requests; anything else is silently dropped.
}

void DirectTransport::broadcast(const std::vector<net::NodeId>& peers,
                                MsgType type, ByteView body) {
  // A round's batched dispatch carries one shared body (uniform k), so
  // decode it once and run a single dispatch loop instead of re-parsing
  // per peer -- observable behaviour stays identical to the send() loop.
  last_processing_ = sim::Duration(0);
  if (type == MsgType::kCollectRequest) {
    const auto req = CollectRequest::deserialize(body);
    if (!req) return;
    if (executor_ != nullptr && peers.size() > 1) {
      serve_collect_batch(peers, *req);
      return;
    }
    for (const net::NodeId peer : peers) serve_collect(peer, *req);
    return;
  }
  if (type == MsgType::kOdRequest) {
    const auto req = OdRequest::deserialize(body);
    if (!req) return;
    for (const net::NodeId peer : peers) serve_od(peer, *req);
    return;
  }
}

void DirectTransport::serve_collect_batch(
    const std::vector<net::NodeId>& peers, const CollectRequest& req) {
  // Partition the batch by radio domain, preserving batch order within
  // each domain (that order becomes the per-channel sequence).
  std::vector<std::vector<net::NodeId>> by_domain(domains_);
  for (const net::NodeId peer : peers) {
    by_domain[domain_of(peer)].push_back(peer);
  }
  std::vector<size_t> live;
  live.reserve(domains_);
  for (size_t d = 0; d < domains_; ++d) {
    if (!by_domain[d].empty()) live.push_back(d);
  }
  // Parallel phase: each domain serves its own provers. A prover touches
  // only its own state and handle_collect is crypto-free (records are
  // pre-MAC'd at measurement time), so the only shared structure is the
  // read-only prover table. Responses go onto the domain->sink channel.
  executor_->run(live.size(), [&](size_t j) {
    const size_t d = live[j];
    for (const net::NodeId peer : by_domain[d]) {
      const auto it = provers_.find(peer);
      if (it == provers_.end()) continue;  // silent drop, like send()
      const auto res = it->second->handle_collect(req);
      net::ChannelFrame frame;
      frame.src = peer;
      frame.tag = static_cast<uint32_t>(MsgType::kCollectResponse);
      frame.aux = res.processing.ns();
      frame.payload = res.response.serialize();
      channels_->push(d, sink_domain_, std::move(frame));
    }
  });
  // Drain phase, after the join: deliver in (domain, sequence) order --
  // for an id-sorted batch over contiguous domains, exactly the
  // sequential loop's order.
  channels_->drain(sink_domain_, [this](const net::ChannelFrame& frame) {
    last_processing_ = sim::Duration(frame.aux);
    if (receiver_) {
      receiver_(frame.src, static_cast<MsgType>(frame.tag), frame.payload);
    }
  });
}

void DirectTransport::set_receiver(Receiver receiver) {
  receiver_ = std::move(receiver);
}

}  // namespace erasmus::attest
