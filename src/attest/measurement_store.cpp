#include "attest/measurement_store.h"

#include <stdexcept>

#include "common/serde.h"

namespace erasmus::attest {

namespace {

size_t digest_size_of(crypto::MacAlgo algo) {
  // Digest and tag widths coincide for all three constructions.
  switch (algo) {
    case crypto::MacAlgo::kHmacSha1:
      return 20;
    case crypto::MacAlgo::kHmacSha256:
    case crypto::MacAlgo::kKeyedBlake2s:
      return 32;
  }
  throw std::invalid_argument("digest_size_of: unknown algorithm");
}

}  // namespace

MeasurementStore::MeasurementStore(hw::DeviceMemory& memory,
                                   hw::RegionId region, crypto::MacAlgo algo)
    : memory_(memory), region_(region), algo_(algo),
      digest_size_(digest_size_of(algo)), mac_size_(digest_size_of(algo)),
      record_size_(1 + 8 + digest_size_ + mac_size_),
      capacity_(memory.region_size(region) / record_size_) {
  if (capacity_ == 0) {
    throw std::invalid_argument(
        "MeasurementStore: region too small for one record");
  }
}

size_t MeasurementStore::offset_of(uint64_t index) const {
  return static_cast<size_t>(index % capacity_) * record_size_;
}

void MeasurementStore::write_record(uint64_t index, const Measurement& m,
                                    uint8_t flag) {
  if (m.digest.size() != digest_size_ || m.mac.size() != mac_size_) {
    throw std::invalid_argument("MeasurementStore: record size mismatch");
  }
  ByteWriter w;
  w.u8(flag);
  w.u64(m.timestamp);
  w.raw(m.digest);
  w.raw(m.mac);
  memory_.write(region_, offset_of(index), w.bytes(), /*privileged=*/false);
}

void MeasurementStore::put(uint64_t index, const Measurement& m) {
  write_record(index, m, kValidMarker);
}

std::optional<Measurement> MeasurementStore::get(uint64_t index) const {
  const Bytes rec = memory_.read(region_, offset_of(index), record_size_,
                                 /*privileged=*/false);
  ByteReader r(rec);
  const uint8_t flag = r.u8();
  if (flag != kValidMarker) return std::nullopt;
  Measurement m;
  m.timestamp = r.u64();
  m.digest = r.raw(digest_size_);
  m.mac = r.raw(mac_size_);
  if (!r.ok()) return std::nullopt;
  return m;
}

std::vector<Measurement> MeasurementStore::latest(uint64_t latest_index,
                                                  size_t k) const {
  if (k > capacity_) k = capacity_;  // paper Fig. 2: if k > n then k = n
  std::vector<Measurement> out;
  out.reserve(k);
  for (size_t j = 0; j < k; ++j) {
    if (latest_index < j) break;  // fewer than k measurements exist yet
    if (auto m = get(latest_index - j)) out.push_back(*m);
  }
  return out;
}

uint64_t MeasurementStore::slot_for_time(uint64_t t, uint64_t tm_ticks) const {
  if (tm_ticks == 0) throw std::invalid_argument("slot_for_time: tm_ticks 0");
  return (t / tm_ticks) % capacity_;
}

uint64_t MeasurementStore::bytes_for(size_t k) const {
  if (k > capacity_) k = capacity_;
  return static_cast<uint64_t>(k) * record_size_;
}

void MeasurementStore::tamper_corrupt(uint64_t index, size_t byte_offset,
                                      uint8_t xor_mask) {
  if (byte_offset >= record_size_) {
    throw std::out_of_range("tamper_corrupt: offset outside record");
  }
  const size_t off = offset_of(index) + byte_offset;
  Bytes b = memory_.read(region_, off, 1, /*privileged=*/false);
  b[0] ^= xor_mask;
  memory_.write(region_, off, b, /*privileged=*/false);
}

void MeasurementStore::tamper_erase(uint64_t index) {
  const Bytes zeros(record_size_, 0);
  memory_.write(region_, offset_of(index), zeros, /*privileged=*/false);
}

void MeasurementStore::tamper_swap(uint64_t a, uint64_t b) {
  const Bytes ra = memory_.read(region_, offset_of(a), record_size_,
                                /*privileged=*/false);
  const Bytes rb = memory_.read(region_, offset_of(b), record_size_,
                                /*privileged=*/false);
  memory_.write(region_, offset_of(a), rb, /*privileged=*/false);
  memory_.write(region_, offset_of(b), ra, /*privileged=*/false);
}

void MeasurementStore::tamper_overwrite(uint64_t index,
                                        const Measurement& forged) {
  write_record(index, forged, kValidMarker);
}

}  // namespace erasmus::attest
