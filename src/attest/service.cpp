#include "attest/service.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace erasmus::attest {

AttestationService::AttestationService(sim::EventQueue& queue,
                                       Transport& transport,
                                       DeviceDirectory& directory,
                                       ServiceConfig config)
    : queue_(queue), transport_(transport), directory_(directory),
      config_(config), window_ctl_(config_.window) {
  register_instruments();
  transport_.set_receiver(
      [this](net::NodeId src, MsgType type, ByteView body) {
        on_receive(src, type, body);
      });
}

void AttestationService::register_instruments() {
  obs::Registry* reg = config_.metrics;
  if (reg == nullptr) return;
  inst_.sessions = &reg->counter("service", "sessions");
  inst_.responses = &reg->counter("service", "responses");
  inst_.retries = &reg->counter("service", "retries");
  inst_.unreachable = &reg->counter("service", "unreachable_sessions");
  inst_.stray_datagrams = &reg->counter("service", "stray_datagrams");
  inst_.loss_backoffs = &reg->counter("window", "loss_backoffs");
  inst_.congestion_backoffs = &reg->counter("window", "congestion_backoffs");
  // Per-device response latency, dispatch to completed report. Buckets span
  // the direct path (sub-millisecond) through multi-hop store-and-forward
  // with retries (tens of seconds).
  inst_.latency_ms = &reg->histogram(
      "service", "response_latency_ms",
      {1.0, 3.0, 10.0, 30.0, 100.0, 300.0, 1000.0, 3000.0, 10000.0, 30000.0});
  inst_.window = &reg->gauge("window", "window");
}

void AttestationService::trace_window(const char* name, const char* reason) {
  obs::TraceRecorder* tr = config_.trace;
  if (tr == nullptr || !tr->enabled(obs::Subsystem::kWindow)) return;
  tr->instant(obs::Subsystem::kWindow, queue_.now(), name,
              {{"reason", reason},
               {"window", static_cast<uint64_t>(window_ctl_.window())}});
}

AttestationService::~AttestationService() {
  // Sever every this-capture still held elsewhere: stop() cancels all
  // pending events, and the transport's delivery callback must not fire
  // into a destroyed service if the queue keeps running.
  stop();
  transport_.set_receiver({});
}

void AttestationService::start() {
  if (running_) return;  // exactly one periodic chain
  running_ = true;
  next_round_event_ =
      queue_.schedule_after(config_.tc, [this] { begin_periodic_round(); });
}

void AttestationService::stop() {
  // Full quiescence, matching the old Collector::stop(): no further rounds
  // start, and in-flight sessions are aborted -- their timeouts cancelled,
  // nothing further sent or recorded. Responses still en route surface as
  // stray datagrams.
  running_ = false;
  if (round_active_ && config_.trace != nullptr) {
    config_.trace->span_end(
        obs::Subsystem::kService, queue_.now(), "round",
        {{"reason", "aborted"},
         {"responses", round_stats_.responses},
         {"unreachable", round_stats_.unreachable_sessions},
         {"aborted_in_flight", static_cast<uint64_t>(in_flight_)}});
  }
  if (next_round_event_) {
    queue_.cancel(*next_round_event_);
    next_round_event_.reset();
  }
  for (auto& [node, session] : active_) {
    if (session.timeout) queue_.cancel(*session.timeout);
  }
  if (retry_flush_event_) {
    queue_.cancel(*retry_flush_event_);
    retry_flush_event_.reset();
  }
  retry_batch_.clear();
  verify_intake_.clear();
  active_.clear();
  pending_.clear();
  in_flight_ = 0;
  round_active_ = false;
  round_periodic_ = false;
}

std::vector<AttestationService::SessionOutcome>
AttestationService::collect_now(const std::vector<DeviceId>& devices,
                                std::optional<uint32_t> k) {
  // Validate before touching any member state: a throw here must not leave
  // sync_outcomes_ dangling or clobber an in-flight periodic round's flag.
  admit_round(devices);
  std::vector<SessionOutcome> outcomes;
  sync_outcomes_ = &outcomes;
  // Cleared on every exit path: a transport that throws mid-dispatch must
  // not leave later completions writing through a dangling stack pointer.
  const struct SyncGuard {
    std::vector<SessionOutcome>*& ptr;
    ~SyncGuard() { ptr = nullptr; }
  } guard{sync_outcomes_};
  round_periodic_ = false;
  begin_round(devices, k.value_or(config_.k));
  return outcomes;
}

void AttestationService::begin_periodic_round() {
  if (!running_) return;
  next_round_event_.reset();
  if (round_active_) {
    // A single-shot round is still draining; retry shortly instead of
    // throwing out of the event loop and aborting the simulation.
    next_round_event_ = queue_.schedule_after(
        config_.response_timeout, [this] { begin_periodic_round(); });
    return;
  }
  std::vector<DeviceId> all(directory_.size());
  for (DeviceId id = 0; id < directory_.size(); ++id) all[id] = id;
  round_periodic_ = true;
  begin_round(all, config_.k);
}

void AttestationService::admit_round(const std::vector<DeviceId>& devices) {
  if (round_active_) {
    throw std::logic_error("AttestationService: round already in progress");
  }
  std::unordered_set<net::NodeId> nodes;
  nodes.reserve(devices.size());
  for (const DeviceId id : devices) {
    // directory_.node() also rejects unknown device ids here, before any
    // session has been dispatched.
    if (!nodes.insert(directory_.node(id)).second) {
      throw std::logic_error(
          "AttestationService: duplicate target endpoint in round");
    }
  }
}

void AttestationService::begin_round(const std::vector<DeviceId>& devices,
                                     uint32_t k) {
  round_active_ = true;
  ++stats_.rounds;
  if (config_.trace != nullptr) {
    config_.trace->span_begin(
        obs::Subsystem::kService, queue_.now(), "round",
        {{"round", stats_.rounds},
         {"targets", static_cast<uint64_t>(devices.size())},
         {"k", static_cast<uint64_t>(k)},
         {"kind", config_.kind == RoundKind::kCollect ? "collect"
                                                      : "on_demand"}});
  }
  // Per-round stats start fresh here; the WindowController itself carries
  // its learned window across rounds (the network did not reset).
  round_stats_ = RoundStats{};
  window_ctl_.begin_round();
  sync_window_stats();
  if (config_.keep_audit && logs_.size() < directory_.size()) {
    logs_.resize(directory_.size());
  }
  round_k_ = k;
  for (const DeviceId id : devices) pending_.push_back(id);
  pump();
}

void AttestationService::poll_congestion() {
  // Relay queue occupancy piggybacks on reports (overlay transports);
  // other backends report zero. One saturation signal is one congestion
  // event -- the controller's burst guard absorbs repeats.
  const double occupancy = transport_.take_congestion();
  if (occupancy < config_.window.congestion_threshold) return;
  if (window_ctl_.on_congestion()) {
    ++stats_.congestion_backoffs;
    ++round_stats_.congestion_backoffs;
    if (inst_.congestion_backoffs != nullptr) {
      inst_.congestion_backoffs->add();
    }
    trace_window("window_cut", "congestion");
  }
  sync_window_stats();
}

void AttestationService::sync_window_stats() {
  round_stats_.window_min = window_ctl_.round_min();
  round_stats_.window_max = window_ctl_.round_max();
  round_stats_.window_final = window_ctl_.window();
  if (inst_.window != nullptr) {
    inst_.window->set(static_cast<double>(window_ctl_.window()));
  }
}

void AttestationService::pump() {
  if (pumping_) return;
  pumping_ = true;
  // Reset on every exit path so a throwing transport cannot wedge the
  // service with the pump latch stuck.
  const struct PumpGuard {
    bool& flag;
    ~PumpGuard() { flag = false; }
  } guard{pumping_};
  poll_congestion();
  const bool coalesce = transport_.coalesced_dispatch();
  while (!pending_.empty() && in_flight_ < window_ctl_.window()) {
    if (coalesce) {
      // Flood transports pay for the whole field per broadcast: wait for
      // at least half a window of free slots (or the final stragglers)
      // before dispatching, instead of flooding per freed slot. The
      // window still bounds what is in flight; this only shapes batches.
      const size_t window = window_ctl_.window();
      const size_t free_slots = window - in_flight_;
      const size_t wanted =
          std::min(pending_.size(), std::max<size_t>(1, window / 2));
      if (free_slots < wanted) break;
    }
    // One dispatch pass: admit as many pending sessions as the window
    // allows. A round requests one uniform k, so collect first attempts
    // all carry the same body and go out as one transport broadcast.
    std::vector<net::NodeId> batch;
    while (!pending_.empty() && in_flight_ < window_ctl_.window()) {
      const DeviceId device = pending_.front();
      pending_.pop_front();
      // admit_round() guaranteed unique endpoints, so no session can be in
      // flight for this node.
      const net::NodeId node = directory_.node(device);
      Session session;
      session.device = device;
      session.node = node;
      session.started = queue_.now();
      ++stats_.sessions;
      ++round_stats_.sessions;
      if (inst_.sessions != nullptr) inst_.sessions->add();
      ++in_flight_;
      stats_.max_in_flight_seen =
          std::max<uint64_t>(stats_.max_in_flight_seen, in_flight_);
      round_stats_.max_in_flight =
          std::max<uint64_t>(round_stats_.max_in_flight, in_flight_);
      if (config_.kind == RoundKind::kCollect) {
        session.attempts = 1;
        session.send_seq = window_ctl_.on_send();
        active_.emplace(node, std::move(session));
        batch.push_back(node);
      } else {
        // OD requests are per-device authenticated: no shared body.
        active_.emplace(node, std::move(session));
        send_attempt(active_.at(node));
      }
    }
    if (!batch.empty()) {
      if (config_.trace != nullptr) {
        config_.trace->instant(
            obs::Subsystem::kService, queue_.now(), "dispatch",
            {{"batch", static_cast<uint64_t>(batch.size())},
             {"in_flight", static_cast<uint64_t>(in_flight_)},
             {"window", static_cast<uint64_t>(window_ctl_.window())}});
      }
      const Bytes body = CollectRequest{round_k_}.serialize();
      // Synchronous transports deliver responses (and erase sessions)
      // during this call; the outer loop then re-checks the window. With
      // a verify executor those deliveries are only TAKEN IN here and
      // bulk-verified right after the broadcast returns -- same verdicts,
      // same completion order, one parallel MAC pass instead of N inline
      // ones.
      defer_verify_ = config_.verify_executor != nullptr;
      transport_.broadcast(batch, MsgType::kCollectRequest, body);
      defer_verify_ = false;
      flush_deferred_verifies();
      // Arm timeouts only for sessions the broadcast did not already
      // complete: the all-synchronous hot path (Fleet over a
      // DirectTransport) then never touches the event queue at all.
      for (const net::NodeId node : batch) {
        const auto it = active_.find(node);
        if (it != active_.end()) arm_timeout(it->second);
      }
    }
  }
  if (round_active_ && in_flight_ == 0 && pending_.empty()) finish_round();
}

void AttestationService::send_attempt(Session& session) {
  ++session.attempts;
  session.send_seq = window_ctl_.on_send();
  Bytes body;
  MsgType type;
  if (config_.kind == RoundKind::kCollect) {
    type = MsgType::kCollectRequest;
    body = CollectRequest{round_k_}.serialize();
  } else {
    type = MsgType::kOdRequest;
    const DeviceRecord& rec = directory_.record(session.device);
    const uint64_t treq = queue_.now().ns() / rec.tick.ns();
    // Judge against the first ask only (see Session::treq): the request
    // itself still carries the current instant.
    if (session.attempts == 1) session.treq = treq;
    body = make_od_request(rec, treq, round_k_).serialize();
  }
  const net::NodeId node = session.node;
  // A synchronous transport completes (and erases) the session inside
  // send(); `session` must not be touched afterwards, and the timeout is
  // only armed if the session survived.
  transport_.send(node, type, body);
  const auto it = active_.find(node);
  if (it != active_.end()) arm_timeout(it->second);
}

void AttestationService::queue_retry(Session& session) {
  // The attempt is only stamped (and counted) at flush time, when it is
  // known to go on the air -- a late response can still complete the
  // session before the flush and prune it from the batch.
  retry_batch_.push_back(session.node);
  if (!retry_flush_event_) {
    // Zero delay: runs at this same instant but AFTER the remaining
    // timeouts of the wave (the queue is FIFO within a timestamp), so
    // the whole wave lands in one batch.
    retry_flush_event_ =
        queue_.schedule_after(sim::Duration(0), [this] { flush_retries(); });
  }
}

void AttestationService::flush_retries() {
  retry_flush_event_.reset();
  std::vector<net::NodeId> batch;
  batch.swap(retry_batch_);
  // A late response may have completed a session while its retry sat in
  // the batch; re-asking would only produce a stray duplicate.
  batch.erase(std::remove_if(batch.begin(), batch.end(),
                             [this](net::NodeId node) {
                               return active_.find(node) == active_.end();
                             }),
              batch.end());
  if (batch.empty()) return;
  for (const net::NodeId node : batch) {
    Session& session = active_.at(node);
    ++session.attempts;
    session.send_seq = window_ctl_.on_send();
  }
  stats_.retries += batch.size();
  round_stats_.retries += batch.size();
  if (inst_.retries != nullptr) inst_.retries->add(batch.size());
  if (config_.trace != nullptr) {
    config_.trace->instant(
        obs::Subsystem::kService, queue_.now(), "retry_wave",
        {{"sessions", static_cast<uint64_t>(batch.size())},
         {"window", static_cast<uint64_t>(window_ctl_.window())}});
  }
  const Bytes body = CollectRequest{round_k_}.serialize();
  transport_.hint_retry_wave();
  // Same deferral as pump()'s dispatch: responses a synchronous backend
  // loops back during this broadcast verify in one bulk pass after it.
  defer_verify_ = config_.verify_executor != nullptr;
  transport_.broadcast(batch, MsgType::kCollectRequest, body);
  defer_verify_ = false;
  flush_deferred_verifies();
  for (const net::NodeId node : batch) {
    const auto it = active_.find(node);
    if (it != active_.end()) arm_timeout(it->second);
  }
}

void AttestationService::arm_timeout(Session& session) {
  const net::NodeId node = session.node;
  // Floor at the bare transport round trip; prover-side processing time
  // still has to come out of the configured budget.
  const sim::Duration timeout =
      std::max(config_.response_timeout, transport_.latency() * 2);
  session.timeout =
      queue_.schedule_after(timeout, [this, node] { on_timeout(node); });
}

void AttestationService::on_receive(net::NodeId src, MsgType type,
                                    ByteView body) {
  const auto it = active_.find(src);
  if (it == active_.end()) {
    // No session awaiting this endpoint: spoofed source, or a stray or
    // duplicate response from an already-finished session.
    ++stats_.stray_datagrams;
    if (inst_.stray_datagrams != nullptr) inst_.stray_datagrams->add();
    return;
  }
  Session& session = it->second;
  const MsgType expected = config_.kind == RoundKind::kCollect
                               ? MsgType::kCollectResponse
                               : MsgType::kOdResponse;
  if (type != expected) {
    ++stats_.stray_datagrams;
    if (inst_.stray_datagrams != nullptr) inst_.stray_datagrams->add();
    return;  // session stays armed; the timeout path recovers
  }
  if (config_.kind == RoundKind::kCollect) {
    const auto resp = CollectResponse::deserialize(body);
    if (!resp) {
      ++stats_.stray_datagrams;
      if (inst_.stray_datagrams != nullptr) inst_.stray_datagrams->add();
      return;
    }
    if (defer_verify_) {
      // A broadcast is on the stack: park the response for the bulk MAC
      // pass instead of judging it here. The session stays in active_ so
      // its slot still counts against the window; intaken guards against
      // a second response landing before the flush (a duplicate, counted
      // exactly as the inline path would count it after completion).
      if (session.intaken) {
        ++stats_.stray_datagrams;
        if (inst_.stray_datagrams != nullptr) inst_.stray_datagrams->add();
        return;
      }
      session.intaken = true;
      verify_intake_.push_back({src, session.device, std::move(*resp)});
      return;
    }
    CollectionReport report = verify_collection(
        directory_.record(session.device), *resp, queue_.now(), round_k_);
    complete(src, /*reachable=*/true, std::move(report),
             /*fresh_valid=*/false);
    return;
  }
  const auto resp = OdResponse::deserialize(body);
  if (!resp) {
    ++stats_.stray_datagrams;
    if (inst_.stray_datagrams != nullptr) inst_.stray_datagrams->add();
    return;
  }
  OdReport od = verify_od_response(directory_.record(session.device), *resp,
                                   queue_.now(), session.treq);
  CollectionReport report = std::move(od.history);
  if (!od.fresh_valid) {
    report.tampering_detected = true;
    report.note += "od fresh invalid; ";
  }
  complete(src, /*reachable=*/true, std::move(report), od.fresh_valid);
}

bool AttestationService::complete_aggregated(net::NodeId node) {
  const auto it = active_.find(node);
  if (it == active_.end()) {
    // No session awaiting this node: a duplicate aggregate's bit, or a
    // head vouching for a device that already answered raw.
    ++stats_.stray_datagrams;
    if (inst_.stray_datagrams != nullptr) inst_.stray_datagrams->add();
    return false;
  }
  ++stats_.aggregated_sessions;
  ++round_stats_.aggregated_sessions;
  CollectionReport report;  // trustworthy by default, freshness nullopt
  report.note = "aggregated by cluster head; ";
  complete(node, /*reachable=*/true, std::move(report),
           /*fresh_valid=*/false, /*aggregated=*/true);
  return true;
}

bool AttestationService::demand_fetch(net::NodeId node) {
  const auto it = active_.find(node);
  if (it == active_.end()) return false;
  Session& session = it->second;
  ++stats_.demand_fetches;
  ++round_stats_.demand_fetches;
  if (config_.trace != nullptr) {
    config_.trace->instant(
        obs::Subsystem::kService, queue_.now(), "demand_fetch",
        {{"device", static_cast<uint64_t>(session.device)},
         {"attempts", static_cast<int64_t>(session.attempts)}});
  }
  if (session.attempts > config_.max_retries) {
    // Budget spent: the armed timeout will close the session as
    // unreachable -- a cleared bit must not grant extra attempts.
    return true;
  }
  // Spend one retry immediately instead of waiting out the timeout: a
  // cleared bit is a stronger signal than silence. The per-device send
  // rides the scoped-retry machinery (cached route or targeted flood).
  if (session.timeout) {
    queue_.cancel(*session.timeout);
    session.timeout.reset();
  }
  ++stats_.retries;
  ++round_stats_.retries;
  if (inst_.retries != nullptr) inst_.retries->add();
  transport_.hint_retry_wave();
  send_attempt(session);
  return true;
}

void AttestationService::on_timeout(net::NodeId node) {
  const auto it = active_.find(node);
  if (it == active_.end()) return;  // completed; cancel raced the event
  Session& session = it->second;
  session.timeout.reset();
  // Every timeout is a loss signal for the adaptive window; the recovery
  // epoch collapses the correlated timeouts of one dispatch wave into a
  // single multiplicative cut.
  if (window_ctl_.on_loss(session.send_seq)) {
    ++stats_.loss_backoffs;
    ++round_stats_.loss_backoffs;
    if (inst_.loss_backoffs != nullptr) inst_.loss_backoffs->add();
    trace_window("window_cut", "loss");
  } else if (config_.window.adaptive) {
    trace_window("window_loss_absorbed", "recovery_epoch");
  }
  sync_window_stats();
  if (session.attempts <= config_.max_retries) {
    if (config_.kind == RoundKind::kCollect &&
        transport_.coalesced_dispatch()) {
      // A lost flood times out its whole dispatch wave at this same
      // instant: coalesce the wave's retries into one broadcast instead
      // of launching one re-flood per device. Retry stats are counted at
      // flush time, for retries that actually go on the air.
      queue_retry(session);
    } else {
      ++stats_.retries;
      ++round_stats_.retries;
      if (inst_.retries != nullptr) inst_.retries->add();
      transport_.hint_retry_wave();
      send_attempt(session);
    }
    return;
  }
  // Retry budget exhausted: the device is unreachable this round. For an
  // unattended prover this itself is a QoA event worth logging.
  complete(node, /*reachable=*/false, CollectionReport{},
           /*fresh_valid=*/false);
}

void AttestationService::flush_deferred_verifies() {
  if (verify_intake_.empty()) return;
  const size_t n = verify_intake_.size();
  // Bulk MAC pass: verify_collection is a pure function of (record,
  // response, now, k), so every intaken response can be judged
  // concurrently into its own report slot. Chunks are grouped by MAC
  // algorithm first (stable sort, so within an algorithm intake order is
  // kept) -- on a heterogeneous fleet each worker then stays on one arch
  // family's crypto code path instead of ping-ponging between them.
  std::vector<CollectionReport> reports(n);
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [this](size_t a, size_t b) {
    return directory_.record(verify_intake_[a].device).algo <
           directory_.record(verify_intake_[b].device).algo;
  });
  const sim::Time now = queue_.now();
  constexpr size_t kChunk = 8;
  const size_t chunks = (n + kChunk - 1) / kChunk;
  config_.verify_executor->run(chunks, [&](size_t c) {
    const size_t lo = c * kChunk;
    const size_t hi = std::min(lo + kChunk, n);
    for (size_t j = lo; j < hi; ++j) {
      const size_t idx = order[j];
      const PendingVerify& pv = verify_intake_[idx];
      reports[idx] = verify_collection(directory_.record(pv.device), pv.resp,
                                       now, round_k_);
    }
  });
  // Completion is sequential, in INTAKE order -- the order the inline
  // path judged responses as the transport delivered them -- so stats,
  // window moves, traces and streamed outcomes are byte-identical.
  // Swap first: complete() can re-enter pump() and start a new intake.
  std::vector<PendingVerify> intake;
  intake.swap(verify_intake_);
  for (size_t i = 0; i < n; ++i) {
    complete(intake[i].node, /*reachable=*/true, std::move(reports[i]),
             /*fresh_valid=*/false);
  }
}

void AttestationService::complete(net::NodeId node, bool reachable,
                                  CollectionReport report, bool fresh_valid,
                                  bool aggregated) {
  const auto it = active_.find(node);
  Session session = std::move(it->second);
  if (session.timeout) queue_.cancel(*session.timeout);
  active_.erase(it);
  --in_flight_;

  SessionOutcome outcome;
  outcome.device = session.device;
  outcome.at = queue_.now();
  outcome.reachable = reachable;
  outcome.attempts = session.attempts;
  outcome.fresh_valid = fresh_valid;
  outcome.aggregated = aggregated;
  if (reachable) {
    ++stats_.responses;
    ++round_stats_.responses;
    if (inst_.responses != nullptr) inst_.responses->add();
    if (inst_.latency_ms != nullptr) {
      inst_.latency_ms->observe((outcome.at - session.started).to_millis());
    }
    const size_t before = window_ctl_.window();
    window_ctl_.on_response();
    if (window_ctl_.window() != before) {
      trace_window("window_grow", "response");
    }
    sync_window_stats();
    outcome.report = std::move(report);
  } else {
    ++stats_.unreachable_sessions;
    ++round_stats_.unreachable_sessions;
    if (inst_.unreachable != nullptr) inst_.unreachable->add();
    if (config_.trace != nullptr) {
      config_.trace->instant(
          obs::Subsystem::kService, outcome.at, "unreachable",
          {{"device", static_cast<uint64_t>(session.device)},
           {"attempts", static_cast<int64_t>(session.attempts)}});
    }
  }

  if (config_.keep_audit) {
    AuditLog& log = logs_[session.device];
    if (reachable) {
      log.record(outcome.at, outcome.report);
    } else {
      log.record_unreachable(outcome.at);
    }
  }
  if (observer_) observer_(outcome);
  // After the observer so the k-entry report can be moved, not copied.
  if (sync_outcomes_ != nullptr) sync_outcomes_->push_back(std::move(outcome));

  // Synchronous completions happen inside pump()'s dispatch loop, which
  // re-checks the window itself; only async completions re-pump here.
  if (!pumping_) pump();
}

void AttestationService::finish_round() {
  round_active_ = false;
  if (config_.trace != nullptr) {
    config_.trace->span_end(
        obs::Subsystem::kService, queue_.now(), "round",
        {{"reason", "drained"},
         {"responses", round_stats_.responses},
         {"retries", round_stats_.retries},
         {"unreachable", round_stats_.unreachable_sessions},
         {"window_final", round_stats_.window_final}});
  }
  if (round_periodic_ && running_) {
    next_round_event_ =
        queue_.schedule_after(config_.tc, [this] { begin_periodic_round(); });
  }
}

}  // namespace erasmus::attest
