// Verdicts and reports produced when collected histories are judged.
//
// Shared between the single-device Verifier wrapper and the fleet-scale
// verifier core (directory.h): per-measurement verdicts, the per-collection
// CollectionReport (Fig. 2, right side) and the ERASMUS+OD report (Fig. 4).
//
// Per §3.4, *any* inconsistency in the returned history -- a bad MAC, an
// off-schedule timestamp, a gap, a reordering, or fewer records than
// requested -- is treated as evidence of malware: benign operation never
// produces it (the store is only written by protected code).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "attest/measurement.h"
#include "sim/time.h"

namespace erasmus::attest {

enum class MeasurementStatus : uint8_t {
  kHealthy,     // authentic and digest matches the golden state
  kInfected,    // authentic but digest differs: malware was resident at t
  kBadMac,      // forged or corrupted record
  kOffSchedule, // authentic MAC but timestamp not on the expected schedule
};

std::string to_string(MeasurementStatus s);

struct MeasurementVerdict {
  Measurement m;
  MeasurementStatus status = MeasurementStatus::kBadMac;
};

struct CollectionReport {
  std::vector<MeasurementVerdict> verdicts;  // newest first
  /// Authentic digest mismatch in some measurement: malware was present at
  /// that time (detected even if it has since left -- the mobile-malware
  /// win over on-demand RA).
  bool infection_detected = false;
  /// Evidence of history manipulation: bad MAC, schedule gap/violation,
  /// reordering, or a short response.
  bool tampering_detected = false;
  /// now - timestamp of the newest *authentic* measurement; nullopt when
  /// nothing authentic came back.
  std::optional<sim::Duration> freshness;
  /// Expected-but-missing measurements (when a schedule is configured).
  size_t missing = 0;
  std::string note;

  bool device_trustworthy() const {
    return !infection_detected && !tampering_detected;
  }
};

struct OdReport {
  MeasurementVerdict fresh;
  CollectionReport history;
  /// Fresh measurement authentic and its timestamp plausibly current.
  bool fresh_valid = false;
};

}  // namespace erasmus::attest
