// Quality of Attestation (QoA), the paper's new metric (§3.1).
//
// QoA is determined by (1) T_M, the time between successive self-
// measurements, and (2) T_C, the time between successive collections, plus
// the derived quantities: k = ceil(T_C / T_M) measurements per collection,
// freshness f in [0, T_M] (expected T_M / 2), and the buffer-safety
// condition T_C <= n * T_M.
//
// This header also provides the closed-form mobile-malware detection
// probabilities used by the ablation benches; the Monte-Carlo counterparts
// live in analysis/detection.h and the tests check they agree.
#pragma once

#include <cstddef>

#include "sim/time.h"

namespace erasmus::attest {

struct QoAParams {
  sim::Duration tm;  // measurement period
  sim::Duration tc;  // collection period

  /// k = ceil(T_C / T_M): measurements per collection so each is collected
  /// exactly once (paper §3.1).
  size_t measurements_per_collection() const;

  /// Expected freshness of the newest measurement at a random collection
  /// instant: T_M / 2.
  sim::Duration expected_freshness() const { return tm / 2; }

  /// Worst-case delay from infection (of persistent malware) to detection:
  /// the malware must first be measured (<= T_M) and the measurement then
  /// collected (<= T_C).
  sim::Duration worst_case_detection_delay() const { return tm + tc; }

  /// True when a buffer of n slots never overwrites an uncollected
  /// measurement: T_C <= n * T_M (paper §3.2).
  bool buffer_safe(size_t n) const;

  /// Smallest n satisfying buffer_safe.
  size_t min_buffer_slots() const;
};

/// P(detection) of mobile malware that dwells for `dwell` and arrives at a
/// uniformly random phase of a REGULAR schedule with period tm:
/// min(1, dwell / tm).
double detection_prob_regular(sim::Duration dwell, sim::Duration tm);

/// P(detection) for *schedule-aware* malware against a REGULAR schedule: it
/// enters immediately after an observed measurement, so it is caught iff
/// dwell >= tm. This is the paper's motivation for irregular intervals.
double detection_prob_schedule_aware_regular(sim::Duration dwell,
                                             sim::Duration tm);

/// P(detection) for schedule-aware malware against an IRREGULAR schedule
/// with intervals uniform on [lower, upper): even entering right after a
/// measurement, the next one fires after an unpredictable interval T, and
/// the malware is caught iff T <= dwell:
///   P = clamp((dwell - lower) / (upper - lower), 0, 1).
double detection_prob_schedule_aware_irregular(sim::Duration dwell,
                                               sim::Duration lower,
                                               sim::Duration upper);

}  // namespace erasmus::attest
