// Verifier-side device knowledge: per-device records and the shared core.
//
// The ERASMUS verifier is ONE logical party overseeing many unattended
// provers (§3, §6). Everything it must know about a device to judge its
// history is a DeviceRecord -- key K, golden-digest epochs, the schedule
// anchor, and the transport address. A DeviceDirectory maps device ids to
// records so a single verifier core (the free functions below) can judge
// any device, instead of every device dragging around its own full
// Verifier instance with duplicated configuration.
//
// Records can be owned by the directory (fleets enroll N devices) or
// linked from live external state (the single-device Verifier wrapper
// keeps its record current through golden-digest rotations, and the
// directory aliases it).
#pragma once

#include <deque>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "attest/protocol.h"
#include "attest/report.h"
#include "attest/schedule.h"
#include "crypto/mac.h"
#include "net/network.h"
#include "sim/time.h"

namespace erasmus::attest {

/// Verifier-side device id: an index into the directory. Distinct from the
/// transport-level net::NodeId, which names an endpoint, not a device.
using DeviceId = uint32_t;

/// Everything the verifier core needs to judge one device's measurements.
struct DeviceRecord {
  crypto::MacAlgo algo = crypto::MacAlgo::kHmacSha256;
  Bytes key;  // K, shared with the prover
  sim::Duration tick = sim::Duration::seconds(1);  // RROC granularity
  /// Golden-digest epochs: (first valid RROC tick, digest), sorted by
  /// tick. A software update appends an epoch so the legitimate pre-update
  /// history is not judged against the new image.
  std::vector<std::pair<uint64_t, Bytes>> goldens;
  /// Measurement schedule anchor (nullptr = no timestamp cross-checking).
  const Scheduler* scheduler = nullptr;  // not owned
  uint64_t schedule_t0 = 0;

  /// Replaces the reference state wholesale (all epochs).
  void set_golden(Bytes digest);
  /// Rotates the reference state at `from_ticks` (appended in time order).
  void rotate_golden(Bytes digest, uint64_t from_ticks);
  /// The digest a measurement taken at `t_ticks` must match.
  const Bytes& golden_at(uint64_t t_ticks) const;
  /// Current (latest-epoch) golden digest.
  const Bytes& golden() const;
};

// --- The shared verifier core ------------------------------------------------
// Free functions so ONE core judges any directory entry; the single-device
// Verifier class (verifier.h) is a thin wrapper over these.

/// MAC + golden-digest verdict for one measurement.
MeasurementVerdict judge_measurement(const DeviceRecord& rec,
                                     const Measurement& m);

/// Validates a collection response against `rec`. `expected_k` is the k
/// the verifier asked for (0 = don't check the count). `now` is collection
/// time.
CollectionReport verify_collection(const DeviceRecord& rec,
                                   const CollectResponse& resp, sim::Time now,
                                   size_t expected_k = 0);

/// Builds an authenticated ERASMUS+OD / on-demand request (Fig. 4).
OdRequest make_od_request(const DeviceRecord& rec, uint64_t now_ticks,
                          uint32_t k);

/// Validates an ERASMUS+OD response (fresh measurement plus history).
OdReport verify_od_response(const DeviceRecord& rec, const OdResponse& resp,
                            sim::Time now, uint64_t treq);

// --- The directory -----------------------------------------------------------

class DeviceDirectory {
 public:
  /// Enrolls a device the directory owns the record for. `node` is the
  /// device's transport address. Returns its DeviceId.
  DeviceId add(net::NodeId node, DeviceRecord record);

  /// Enrolls a device whose record lives elsewhere and may mutate after
  /// enrollment (e.g. a Verifier's record, rotated on software updates).
  /// `live` must outlive the directory.
  DeviceId link(net::NodeId node, const DeviceRecord* live);

  const DeviceRecord& record(DeviceId id) const;
  /// Mutable access to an owned record (golden rotation, schedule anchor).
  /// Throws std::logic_error for linked records -- mutate the live source.
  DeviceRecord& owned_record(DeviceId id);

  net::NodeId node(DeviceId id) const;
  /// Reverse lookup; nullopt when no device is enrolled at `node`.
  std::optional<DeviceId> by_node(net::NodeId node) const;

  size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    net::NodeId node = 0;
    DeviceRecord* owned = nullptr;  // arena slot; null for linked entries
    const DeviceRecord* record = nullptr;  // always valid
  };

  DeviceId insert(Entry entry);

  /// Owned records live in one arena instead of N heap allocations -- a
  /// fleet enrolls devices in id order, so the verifier core's record
  /// lookups walk contiguous(ish) memory during a batched verify pass.
  /// A deque never relocates on push_back, so Entry::owned pointers and
  /// record() references stay valid across enrollment.
  std::deque<DeviceRecord> arena_;
  std::vector<Entry> entries_;
  std::unordered_map<net::NodeId, DeviceId> by_node_;
};

}  // namespace erasmus::attest
