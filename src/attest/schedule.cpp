#include "attest/schedule.h"

#include <stdexcept>

#include "common/serde.h"
#include "crypto/hmac_drbg.h"

namespace erasmus::attest {

RegularScheduler::RegularScheduler(sim::Duration tm) : tm_(tm) {
  if (tm.is_zero()) {
    throw std::invalid_argument("RegularScheduler: T_M must be positive");
  }
}

IrregularScheduler::IrregularScheduler(Bytes key, sim::Duration lower,
                                       sim::Duration upper, sim::Duration tick)
    : key_(std::move(key)), lower_(lower), upper_(upper), tick_(tick) {
  if (key_.empty()) {
    throw std::invalid_argument("IrregularScheduler: key required");
  }
  if (lower_.is_zero() || upper_ <= lower_) {
    throw std::invalid_argument(
        "IrregularScheduler: need 0 < L < U interval bounds");
  }
  if (tick_.is_zero()) {
    throw std::invalid_argument("IrregularScheduler: tick must be positive");
  }
}

sim::Duration IrregularScheduler::next_interval(uint64_t t_ticks) const {
  // CSPRNG_K(t_i): an HMAC-DRBG instantiated from K and the timestamp of
  // the measurement just taken. Deterministic in (K, t_i), so prover and
  // verifier agree; unpredictable without K.
  ByteWriter seed_input;
  seed_input.u64(t_ticks);
  crypto::HmacDrbg drbg(key_, seed_input.bytes());
  const uint64_t span_ticks = (upper_ - lower_) / tick_;
  const uint64_t draw = drbg.next_below(span_ticks);
  return lower_ + tick_ * draw;  // map: x -> x mod (U - L) + L
}

sim::Duration IrregularScheduler::nominal_period() const {
  return (lower_ + upper_) / 2;
}

LenientScheduler::LenientScheduler(std::unique_ptr<Scheduler> base,
                                   double window_factor)
    : base_(std::move(base)), window_factor_(window_factor) {
  if (!base_) {
    throw std::invalid_argument("LenientScheduler: base scheduler required");
  }
  if (window_factor_ < 1.0) {
    throw std::invalid_argument("LenientScheduler: w must be >= 1");
  }
}

sim::Duration LenientScheduler::window_slack() const {
  const double slack_ns =
      (window_factor_ - 1.0) * static_cast<double>(nominal_period().ns());
  return sim::Duration(static_cast<uint64_t>(slack_ns));
}

std::vector<uint64_t> expected_schedule(const Scheduler& sched,
                                        uint64_t t0_ticks, uint64_t t_end_ticks,
                                        sim::Duration tick) {
  std::vector<uint64_t> times;
  uint64_t t = t0_ticks;
  while (t <= t_end_ticks) {
    times.push_back(t);
    const sim::Duration step = sched.next_interval(t);
    const uint64_t step_ticks = step / tick;
    if (step_ticks == 0) {
      throw std::logic_error("expected_schedule: interval below one tick");
    }
    t += step_ticks;
  }
  return times;
}

}  // namespace erasmus::attest
