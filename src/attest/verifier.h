// The ERASMUS verifier.
//
// Holds the device key K and the golden (expected) memory digest; validates
// collected measurement histories (Fig. 2, right side), builds and checks
// ERASMUS+OD exchanges (Fig. 4), and derives the QoA facts a collection
// establishes: infection evidence, tampering evidence, freshness.
//
// Per §3.4, *any* inconsistency in the returned history -- a bad MAC, an
// off-schedule timestamp, a gap, a reordering, or fewer records than
// requested -- is treated as evidence of malware: benign operation never
// produces it (the store is only written by protected code).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "attest/protocol.h"
#include "attest/schedule.h"
#include "sim/time.h"

namespace erasmus::attest {

enum class MeasurementStatus : uint8_t {
  kHealthy,     // authentic and digest matches the golden state
  kInfected,    // authentic but digest differs: malware was resident at t
  kBadMac,      // forged or corrupted record
  kOffSchedule, // authentic MAC but timestamp not on the expected schedule
};

std::string to_string(MeasurementStatus s);

struct MeasurementVerdict {
  Measurement m;
  MeasurementStatus status = MeasurementStatus::kBadMac;
};

struct CollectionReport {
  std::vector<MeasurementVerdict> verdicts;  // newest first
  /// Authentic digest mismatch in some measurement: malware was present at
  /// that time (detected even if it has since left -- the mobile-malware
  /// win over on-demand RA).
  bool infection_detected = false;
  /// Evidence of history manipulation: bad MAC, schedule gap/violation,
  /// reordering, or a short response.
  bool tampering_detected = false;
  /// now - timestamp of the newest *authentic* measurement; nullopt when
  /// nothing authentic came back.
  std::optional<sim::Duration> freshness;
  /// Expected-but-missing measurements (when a schedule is configured).
  size_t missing = 0;
  std::string note;

  bool device_trustworthy() const {
    return !infection_detected && !tampering_detected;
  }
};

struct VerifierConfig {
  crypto::MacAlgo algo = crypto::MacAlgo::kHmacSha256;
  Bytes key;             // K, shared with the prover
  Bytes golden_digest;   // H(mem) of the known-good software state
  sim::Duration tick = sim::Duration::seconds(1);  // RROC granularity
};

class Verifier {
 public:
  explicit Verifier(VerifierConfig config);

  /// Registers the prover's measurement schedule so timestamps can be
  /// cross-checked. `t0_ticks` anchors the first expected measurement.
  /// Works for both regular and irregular schedules -- the verifier owns K
  /// and replays CSPRNG_K exactly as the prover does.
  void set_schedule(const Scheduler* scheduler, uint64_t t0_ticks);

  /// Replaces the reference state wholesale (all epochs).
  void set_golden_digest(Bytes digest);
  /// Rotates the reference state at `from_ticks`: measurements with
  /// timestamp >= from_ticks are judged against `digest`, earlier ones
  /// against the previous epoch (so a software update does not turn the
  /// legitimate pre-update history into false "infections").
  void rotate_golden_digest(Bytes digest, uint64_t from_ticks);
  /// The digest a measurement taken at `t_ticks` must match.
  const Bytes& golden_digest_at(uint64_t t_ticks) const;
  /// Current (latest-epoch) golden digest.
  const Bytes& golden_digest() const;

  /// Validates a collection response. `expected_k` is the k the verifier
  /// asked for (0 = don't check the count). `now` is collection time.
  CollectionReport verify_collection(const CollectResponse& resp,
                                     sim::Time now,
                                     size_t expected_k = 0) const;

  /// Builds an authenticated ERASMUS+OD / on-demand request (Fig. 4).
  OdRequest make_od_request(uint64_t now_ticks, uint32_t k) const;

  struct OdReport {
    MeasurementVerdict fresh;
    CollectionReport history;
    /// Fresh measurement authentic and its timestamp plausibly current.
    bool fresh_valid = false;
  };
  OdReport verify_od_response(const OdResponse& resp, sim::Time now,
                              uint64_t treq) const;

  const VerifierConfig& config() const { return config_; }

 private:
  MeasurementVerdict judge(const Measurement& m) const;

  VerifierConfig config_;
  /// Golden-digest epochs: (first valid RROC tick, digest), sorted by tick.
  std::vector<std::pair<uint64_t, Bytes>> goldens_;
  const Scheduler* scheduler_ = nullptr;  // not owned
  uint64_t schedule_t0_ = 0;
};

}  // namespace erasmus::attest
