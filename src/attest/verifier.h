// The single-device ERASMUS verifier wrapper.
//
// Holds the device key K and the golden (expected) memory digest as one
// DeviceRecord, and delegates all judging to the shared verifier core in
// directory.h: validating collected measurement histories (Fig. 2, right
// side), building and checking ERASMUS+OD exchanges (Fig. 4), and deriving
// the QoA facts a collection establishes.
//
// For fleets, enroll records in a DeviceDirectory and call the core
// directly (or through an AttestationService) instead of instantiating one
// Verifier per device; `record()` lets a DeviceDirectory alias this
// verifier's live state (golden rotations included) via link().
#pragma once

#include <string>
#include <vector>

#include "attest/directory.h"
#include "attest/protocol.h"
#include "attest/report.h"
#include "attest/schedule.h"
#include "sim/time.h"

namespace erasmus::attest {

struct VerifierConfig {
  crypto::MacAlgo algo = crypto::MacAlgo::kHmacSha256;
  Bytes key;             // K, shared with the prover
  Bytes golden_digest;   // H(mem) of the known-good software state
  sim::Duration tick = sim::Duration::seconds(1);  // RROC granularity
};

class Verifier {
 public:
  explicit Verifier(VerifierConfig config);

  /// Registers the prover's measurement schedule so timestamps can be
  /// cross-checked. `t0_ticks` anchors the first expected measurement.
  /// Works for both regular and irregular schedules -- the verifier owns K
  /// and replays CSPRNG_K exactly as the prover does.
  void set_schedule(const Scheduler* scheduler, uint64_t t0_ticks);

  /// Replaces the reference state wholesale (all epochs).
  void set_golden_digest(Bytes digest);
  /// Rotates the reference state at `from_ticks`: measurements with
  /// timestamp >= from_ticks are judged against `digest`, earlier ones
  /// against the previous epoch (so a software update does not turn the
  /// legitimate pre-update history into false "infections").
  void rotate_golden_digest(Bytes digest, uint64_t from_ticks);
  /// The digest a measurement taken at `t_ticks` must match.
  const Bytes& golden_digest_at(uint64_t t_ticks) const;
  /// Current (latest-epoch) golden digest.
  const Bytes& golden_digest() const;

  /// Validates a collection response. `expected_k` is the k the verifier
  /// asked for (0 = don't check the count). `now` is collection time.
  CollectionReport verify_collection(const CollectResponse& resp,
                                     sim::Time now,
                                     size_t expected_k = 0) const;

  /// Builds an authenticated ERASMUS+OD / on-demand request (Fig. 4).
  OdRequest make_od_request(uint64_t now_ticks, uint32_t k) const;

  using OdReport = attest::OdReport;
  OdReport verify_od_response(const OdResponse& resp, sim::Time now,
                              uint64_t treq) const;

  const VerifierConfig& config() const { return config_; }
  /// This verifier's live device record -- alias it into a DeviceDirectory
  /// with link() to let the shared core / AttestationService judge this
  /// device while tracking golden rotations made here.
  const DeviceRecord& record() const { return record_; }

 private:
  VerifierConfig config_;
  DeviceRecord record_;
};

}  // namespace erasmus::attest
