// Single-device collection daemon: a thin wrapper over AttestationService.
//
// Runs the Fig. 2 collection loop over the (unreliable) network: every T_C
// it requests the k freshest measurements, retries on timeout, verifies
// whatever comes back and appends the report to an AuditLog. A device that
// stays silent past the retry budget is recorded as an unreachable round --
// for an unattended device that is itself actionable information.
//
// Internally this is an AttestationService with a one-entry DeviceDirectory
// (linked to the caller's Verifier, so golden rotations stay visible) on
// the periodic round policy. New code overseeing more than one device
// should use AttestationService directly; see README "Verifier-side
// service" for the porting guide.
#pragma once

#include <memory>

#include "attest/audit.h"
#include "attest/directory.h"
#include "attest/service.h"
#include "attest/transport.h"
#include "attest/verifier.h"
#include "net/network.h"
#include "sim/event_queue.h"

namespace erasmus::attest {

struct CollectorConfig {
  sim::Duration tc = sim::Duration::hours(1);  // collection period
  uint32_t k = 8;                              // records per request
  sim::Duration response_timeout = sim::Duration::seconds(2);
  int max_retries = 2;  // per round, after the first attempt
};

class Collector {
 public:
  /// `self` must already be registered on the network; the collector
  /// installs its own datagram handler.
  Collector(sim::EventQueue& queue, net::Network& network, net::NodeId self,
            net::NodeId prover_node, Verifier& verifier, AuditLog& log,
            CollectorConfig config);

  /// Schedules the first round one T_C from now.
  void start();
  void stop();

  struct Stats {
    uint64_t rounds = 0;
    uint64_t responses = 0;
    uint64_t retries = 0;
    uint64_t unreachable_rounds = 0;
  };
  const Stats& stats() const;

 private:
  DeviceDirectory directory_;
  NetworkTransport transport_;
  std::unique_ptr<AttestationService> service_;
  mutable Stats stats_;
};

}  // namespace erasmus::attest
