#include "attest/measurement.h"

#include "common/serde.h"
#include "crypto/blake2s.h"
#include "crypto/sha1.h"
#include "crypto/sha256.h"

namespace erasmus::attest {

namespace {

size_t digest_size_for(crypto::MacAlgo algo) {
  switch (algo) {
    case crypto::MacAlgo::kHmacSha1:
      return crypto::Sha1::kDigestSize;
    case crypto::MacAlgo::kHmacSha256:
      return crypto::Sha256::kDigestSize;
    case crypto::MacAlgo::kKeyedBlake2s:
      return crypto::Blake2s::kMaxDigestSize;
  }
  return 0;
}

size_t tag_size_for(crypto::MacAlgo algo) {
  switch (algo) {
    case crypto::MacAlgo::kHmacSha1:
      return crypto::Sha1::kDigestSize;
    case crypto::MacAlgo::kHmacSha256:
      return crypto::Sha256::kDigestSize;
    case crypto::MacAlgo::kKeyedBlake2s:
      return crypto::Blake2s::kMaxDigestSize;
  }
  return 0;
}

}  // namespace

crypto::HashAlgo hash_for(crypto::MacAlgo algo) {
  switch (algo) {
    case crypto::MacAlgo::kHmacSha1:
      return crypto::HashAlgo::kSha1;
    case crypto::MacAlgo::kHmacSha256:
      return crypto::HashAlgo::kSha256;
    case crypto::MacAlgo::kKeyedBlake2s:
      return crypto::HashAlgo::kBlake2s;
  }
  return crypto::HashAlgo::kSha256;
}

Bytes Measurement::serialize() const {
  ByteWriter w;
  w.u64(timestamp);
  w.var_bytes(digest);
  w.var_bytes(mac);
  return w.take();
}

std::optional<Measurement> Measurement::deserialize(ByteView data) {
  ByteReader r(data);
  Measurement m;
  m.timestamp = r.u64();
  m.digest = r.var_bytes();
  m.mac = r.var_bytes();
  if (!r.done()) return std::nullopt;
  return m;
}

size_t Measurement::wire_size(crypto::MacAlgo algo) {
  return 8 + 4 + digest_size_for(algo) + 4 + tag_size_for(algo);
}

Bytes measurement_mac_input(uint64_t t, ByteView digest) {
  ByteWriter w;
  w.u64(t);
  w.raw(digest);
  return w.take();
}

Measurement compute_measurement(crypto::MacAlgo algo, ByteView key,
                                ByteView memory, uint64_t t) {
  Measurement m;
  m.timestamp = t;
  m.digest = crypto::Hash::digest(hash_for(algo), memory);
  m.mac = crypto::Mac::compute(algo, key,
                               measurement_mac_input(t, m.digest));
  return m;
}

Measurement compute_measurement_protected(hw::SecurityArch& arch,
                                          crypto::MacAlgo algo,
                                          hw::RegionId attested_region,
                                          uint64_t t) {
  Measurement m;
  arch.run_protected([&](hw::SecurityArch::ProtectedContext& ctx) {
    const ByteView mem = ctx.memory().view(attested_region,
                                           /*privileged=*/true);
    m = compute_measurement(algo, ctx.key(), mem, t);
  });
  return m;
}

bool verify_measurement(crypto::MacAlgo algo, ByteView key,
                        const Measurement& m) {
  return crypto::Mac::verify(algo, key,
                             measurement_mac_input(m.timestamp, m.digest),
                             m.mac);
}

}  // namespace erasmus::attest
