#include "attest/audit.h"

#include <algorithm>

namespace erasmus::attest {

void AuditLog::record(sim::Time at, CollectionReport report) {
  entries_.push_back(AuditEntry{at, true, std::move(report)});
}

void AuditLog::record_unreachable(sim::Time at) {
  entries_.push_back(AuditEntry{at, false, {}});
}

std::optional<sim::Time> AuditLog::first_infection_seen() const {
  for (const auto& e : entries_) {
    if (e.reachable && e.report.infection_detected) return e.at;
  }
  return std::nullopt;
}

std::optional<sim::Time> AuditLog::first_tampering_seen() const {
  for (const auto& e : entries_) {
    if (e.reachable && e.report.tampering_detected) return e.at;
  }
  return std::nullopt;
}

double AuditLog::trustworthy_fraction() const {
  if (entries_.empty()) return 0.0;
  const auto n = std::count_if(entries_.begin(), entries_.end(),
                               [](const AuditEntry& e) {
                                 return e.reachable &&
                                        e.report.device_trustworthy();
                               });
  return static_cast<double>(n) / static_cast<double>(entries_.size());
}

double AuditLog::reachable_fraction() const {
  if (entries_.empty()) return 0.0;
  const auto n = std::count_if(entries_.begin(), entries_.end(),
                               [](const AuditEntry& e) { return e.reachable; });
  return static_cast<double>(n) / static_cast<double>(entries_.size());
}

AuditLog::EmpiricalQoA AuditLog::empirical_qoa() const {
  EmpiricalQoA q;
  uint64_t freshness_sum = 0;
  uint64_t freshness_max = 0;
  size_t freshness_count = 0;
  std::optional<sim::Time> prev;
  uint64_t interval_sum = 0;
  size_t interval_count = 0;

  for (const auto& e : entries_) {
    if (!e.reachable) continue;
    ++q.rounds;
    if (e.report.freshness) {
      freshness_sum += e.report.freshness->ns();
      freshness_max = std::max(freshness_max, e.report.freshness->ns());
      ++freshness_count;
    }
    if (prev) {
      interval_sum += (e.at - *prev).ns();
      ++interval_count;
    }
    prev = e.at;
  }
  if (freshness_count > 0) {
    q.mean_freshness = sim::Duration(freshness_sum / freshness_count);
    q.max_freshness = sim::Duration(freshness_max);
  }
  if (interval_count > 0) {
    q.mean_collection_interval = sim::Duration(interval_sum / interval_count);
  }
  return q;
}

}  // namespace erasmus::attest
