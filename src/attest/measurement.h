// ERASMUS self-measurement record (paper §3):
//
//     M_t = < t, H(mem_t), MAC_K(t, H(mem_t)) >
//
// `t` is the RROC value when the measurement was taken, H is the hash
// paired with the MAC construction, and MAC_K binds the timestamp to the
// memory digest under the device key K. Measurements are not secret and are
// stored/transmitted in the clear; their integrity rests entirely on MAC_K.
#pragma once

#include <optional>

#include "common/bytes.h"
#include "crypto/mac.h"
#include "hw/arch.h"

namespace erasmus::attest {

struct Measurement {
  uint64_t timestamp = 0;  // RROC ticks
  Bytes digest;            // H(mem_t)
  Bytes mac;               // MAC_K(t, H(mem_t))

  bool operator==(const Measurement&) const = default;

  /// Wire encoding: u64 t | var digest | var mac.
  Bytes serialize() const;
  static std::optional<Measurement> deserialize(ByteView data);

  /// Serialized size for a given algorithm (fixed: all fields fixed-width).
  static size_t wire_size(crypto::MacAlgo algo);
};

/// The hash paired with each MAC construction (H in M_t). HMAC-X uses X;
/// keyed BLAKE2s uses unkeyed BLAKE2s for the memory digest.
crypto::HashAlgo hash_for(crypto::MacAlgo algo);

/// Canonical MAC input: u64 t (little-endian) followed by the digest.
Bytes measurement_mac_input(uint64_t t, ByteView digest);

/// Computes M_t over `memory` with key `key` (host-side primitive; no
/// architecture involvement -- used by the verifier to derive expected
/// values and by tests).
Measurement compute_measurement(crypto::MacAlgo algo, ByteView key,
                                ByteView memory, uint64_t t);

/// Computes M_t *inside* the security architecture's protected environment:
/// the attested region is read with privileged access and K is obtained
/// through the ProtectedContext -- the only legal path to it. This is the
/// code path the prover uses (paper: "The computation of H(mem_t) and MAC is
/// done in the context of the security architecture").
Measurement compute_measurement_protected(hw::SecurityArch& arch,
                                          crypto::MacAlgo algo,
                                          hw::RegionId attested_region,
                                          uint64_t t);

/// Verifies MAC_K(t, H(mem_t)) in constant time.
bool verify_measurement(crypto::MacAlgo algo, ByteView key,
                        const Measurement& m);

}  // namespace erasmus::attest
