// Transport backends for the verifier-side attestation service.
//
// The collection protocol itself (protocol.h) is transport-agnostic; this
// interface decouples the AttestationService from net::Network so the same
// session state machine drives both deployment shapes the codebase uses:
//
//  * NetworkTransport -- the simulated datagram network (latency, loss,
//    link filters). Responses arrive asynchronously via the EventQueue;
//    the service's timeout/retry machinery does real work.
//  * DirectTransport  -- the in-process path Fleet::collect_round uses:
//    requests are dispatched straight into the prover's handler and the
//    response is looped back synchronously at the current virtual time
//    (zero latency, no queue involvement) -- exactly the
//    reachability-at-an-instant semantics swarm collection needs (§6).
//
// Addresses are net::NodeIds in both backends; the DirectTransport's
// address space is its own attach() table and is independent of any
// Network instance.
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "attest/protocol.h"
#include "common/parallel.h"
#include "net/network.h"
#include "net/shard_channels.h"
#include "sim/time.h"

namespace erasmus::attest {

class Prover;

class Transport {
 public:
  /// Delivery callback: source endpoint plus the unframed message. The
  /// body view is only valid for the duration of the call.
  using Receiver =
      std::function<void(net::NodeId src, MsgType type, ByteView body)>;

  virtual ~Transport() = default;

  /// Sends one framed protocol message to `peer`. Delivery guarantees are
  /// the backend's: the network may drop or delay, the direct backend
  /// replies synchronously.
  virtual void send(net::NodeId peer, MsgType type, ByteView body) = 0;

  /// Sends the same message to every peer (batched round dispatch). The
  /// default loops over send(); backends may do better.
  virtual void broadcast(const std::vector<net::NodeId>& peers, MsgType type,
                         ByteView body);

  /// Installs the service-side delivery callback (replaces any previous).
  virtual void set_receiver(Receiver receiver) = 0;

  /// One-way latency estimate for timeout sizing; zero for direct.
  virtual sim::Duration latency() const = 0;

  /// Drains the backend's congestion signal: the worst relay-queue
  /// occupancy fraction (0..1) reported since the last call. Backends
  /// without store-and-forward queues return 0. Draining (rather than a
  /// const peek) makes one saturation burst count as one event for the
  /// service's adaptive window.
  virtual double take_congestion() { return 0.0; }

  /// True when broadcast() has a large per-call cost independent of the
  /// batch size (a flood transport wakes the whole field for one frame).
  /// The service then coalesces dispatch into half-window batches instead
  /// of topping the window up per completion -- same sessions, far fewer
  /// broadcasts. Per-peer backends keep the default: their dispatch cost
  /// is per session, so eager refill is strictly better.
  virtual bool coalesced_dispatch() const { return false; }

  /// Hints that the NEXT send() or broadcast() carries retries rather
  /// than first-attempt dispatch. Backends may route retries differently
  /// (scoped unicast over a cached path) and attribute their stats to
  /// the retry economy. Consumed by that one call; ignored by default.
  virtual void hint_retry_wave() {}
};

/// Attaches the service to one node of a simulated datagram network.
class NetworkTransport : public Transport {
 public:
  /// `self` must already be registered on `network`; the transport
  /// installs its own datagram handler there (and removes it again on
  /// destruction, so in-flight datagrams cannot fire into a freed object).
  NetworkTransport(net::Network& network, net::NodeId self);
  ~NetworkTransport() override;

  void send(net::NodeId peer, MsgType type, ByteView body) override;
  void broadcast(const std::vector<net::NodeId>& peers, MsgType type,
                 ByteView body) override;
  void set_receiver(Receiver receiver) override;
  sim::Duration latency() const override { return network_.latency(); }

  net::NodeId self() const { return self_; }
  /// Datagrams dropped because they did not unframe to a known MsgType.
  uint64_t malformed_frames() const { return malformed_frames_; }

 private:
  net::Network& network_;
  net::NodeId self_;
  Receiver receiver_;
  uint64_t malformed_frames_ = 0;
};

/// In-process transport: each endpoint is a Prover served synchronously.
class DirectTransport : public Transport {
 public:
  /// Registers `prover` as endpoint `node` (any id space the caller
  /// likes -- fleets use the global device id).
  void attach(net::NodeId node, Prover& prover);

  /// Dispatches to the attached prover and loops the reply straight back
  /// into the receiver before returning. Unknown endpoints and requests
  /// the prover rejects (OD auth failure) produce no reply, like a silent
  /// datagram drop.
  void send(net::NodeId peer, MsgType type, ByteView body) override;
  /// Batched round dispatch, symmetric with NetworkTransport::broadcast:
  /// one pass that decodes the shared request once and serves each peer in
  /// `peers` order -- observable effects identical to the send() loop.
  void broadcast(const std::vector<net::NodeId>& peers, MsgType type,
                 ByteView body) override;
  void set_receiver(Receiver receiver) override;
  sim::Duration latency() const override { return sim::Duration(0); }

  /// Prover-side processing time charged for the last served request
  /// (busy-wait + buffer read + packet construction; see
  /// Prover::CollectResult). Zero when the last send produced no reply.
  sim::Duration last_processing() const { return last_processing_; }

  /// Shard-local radio domains: partitions the attached endpoints into
  /// `domains` contiguous-id blocks and serves collect broadcasts domain-
  /// parallel. Each domain's worker runs its own provers and pushes the
  /// response frames onto its domain->sink channel; the frames are then
  /// drained into the receiver in deterministic (domain, sequence) order.
  /// For an id-sorted batch over contiguous domains that is exactly the
  /// order the sequential loop delivered, so observable behaviour is
  /// unchanged -- only the prover-side work runs in parallel. `sink` is
  /// the endpoint the verifier is co-located with: frames from its domain
  /// count as local traffic, everything else as cross-domain.
  /// Call AFTER the last attach(); `executor` must outlive the transport.
  void enable_batch_serve(common::ParallelExecutor& executor, size_t domains,
                          net::NodeId sink);
  /// The domain an attached endpoint belongs to (batch serve only).
  size_t domain_of(net::NodeId node) const;
  /// Channel traffic counters (nullptr until batch serve is enabled).
  const net::ShardChannels* channels() const { return channels_.get(); }

 private:
  /// Per-peer dispatch of an already-decoded request (send() and
  /// broadcast() decode once, then share these).
  void serve_collect(net::NodeId peer, const CollectRequest& req);
  void serve_od(net::NodeId peer, const OdRequest& req);
  /// The domain-parallel broadcast path (batch serve enabled, >= 2 peers).
  void serve_collect_batch(const std::vector<net::NodeId>& peers,
                           const CollectRequest& req);

  std::unordered_map<net::NodeId, Prover*> provers_;
  Receiver receiver_;
  sim::Duration last_processing_;

  // Batch serve state (inert until enable_batch_serve).
  common::ParallelExecutor* executor_ = nullptr;
  std::unique_ptr<net::ShardChannels> channels_;
  size_t domains_ = 0;
  size_t sink_domain_ = 0;
  net::NodeId domain_base_ = 0;  // attached id range: [base, base + span)
  size_t domain_span_ = 0;
};

}  // namespace erasmus::attest
