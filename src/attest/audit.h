// Verifier-side audit log: the longitudinal record QoA is judged by.
//
// Each collection round appends an entry; queries answer the operator's
// questions: when was the device first seen infected, what freshness are we
// actually achieving (empirical QoA vs. the configured T_M/T_C), how often
// was the device unreachable.
#pragma once

#include <optional>
#include <vector>

#include "attest/verifier.h"
#include "sim/time.h"

namespace erasmus::attest {

struct AuditEntry {
  sim::Time at;
  bool reachable = true;
  CollectionReport report;  // empty when unreachable
};

class AuditLog {
 public:
  void record(sim::Time at, CollectionReport report);
  void record_unreachable(sim::Time at);

  size_t size() const { return entries_.size(); }
  const std::vector<AuditEntry>& entries() const { return entries_; }

  /// Time of the first collection whose report shows an infection.
  std::optional<sim::Time> first_infection_seen() const;
  /// Time of the first collection whose report shows tampering.
  std::optional<sim::Time> first_tampering_seen() const;

  /// Fraction of rounds in which the device was reachable AND trustworthy.
  double trustworthy_fraction() const;
  /// Fraction of rounds the device answered at all.
  double reachable_fraction() const;

  /// Empirical QoA over the log.
  struct EmpiricalQoA {
    size_t rounds = 0;
    sim::Duration mean_freshness;
    sim::Duration max_freshness;
    sim::Duration mean_collection_interval;
  };
  EmpiricalQoA empirical_qoa() const;

 private:
  std::vector<AuditEntry> entries_;
};

}  // namespace erasmus::attest
