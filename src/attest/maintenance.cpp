#include "attest/maintenance.h"

#include "common/serde.h"

namespace erasmus::attest {

Bytes MaintenanceRequest::mac_input(Op op, uint64_t treq,
                                    ByteView image_digest,
                                    crypto::MacAlgo /*algo*/) {
  ByteWriter w;
  w.u8(static_cast<uint8_t>(op));
  w.u64(treq);
  w.var_bytes(image_digest);
  return w.take();
}

Bytes MaintenanceRequest::serialize() const {
  ByteWriter w;
  w.u8(static_cast<uint8_t>(op));
  w.u64(treq);
  w.var_bytes(image);
  w.var_bytes(mac);
  return w.take();
}

std::optional<MaintenanceRequest> MaintenanceRequest::deserialize(
    ByteView data) {
  ByteReader r(data);
  MaintenanceRequest req;
  const uint8_t op = r.u8();
  if (op != static_cast<uint8_t>(Op::kUpdate) &&
      op != static_cast<uint8_t>(Op::kErase)) {
    return std::nullopt;
  }
  req.op = static_cast<Op>(op);
  req.treq = r.u64();
  req.image = r.var_bytes();
  req.mac = r.var_bytes();
  if (!r.done()) return std::nullopt;
  return req;
}

std::optional<sim::Duration> handle_maintenance(Prover& prover,
                                                const MaintenanceRequest& req) {
  const auto& config = prover.config();
  const uint64_t now_ticks = prover.rroc().read();

  // Freshness first (cheap), as in the OD path.
  if (req.treq > now_ticks ||
      now_ticks - req.treq > config.od_freshness_window_ticks) {
    return std::nullopt;
  }

  // Authenticate inside the protected environment; the MAC binds the
  // operation and the image content (via its digest).
  const Bytes image_digest =
      crypto::Hash::digest(hash_for(config.algo), req.image);
  bool authentic = false;
  prover.arch().run_protected([&](hw::SecurityArch::ProtectedContext& ctx) {
    authentic = crypto::Mac::verify(
        config.algo, ctx.key(),
        MaintenanceRequest::mac_input(req.op, req.treq, image_digest,
                                      config.algo),
        req.mac);
  });
  if (!authentic) return std::nullopt;

  auto& mem = prover.memory();
  const hw::RegionId app = prover.attested_region();
  const size_t app_size = mem.region_size(app);

  switch (req.op) {
    case MaintenanceRequest::Op::kUpdate: {
      if (req.image.size() > app_size) return std::nullopt;
      // Install: the image, zero-padded to the region (deterministic
      // post-update state so the verifier can predict the new digest).
      Bytes padded = req.image;
      padded.resize(app_size, 0x00);
      mem.write(app, 0, padded, /*privileged=*/true);
      break;
    }
    case MaintenanceRequest::Op::kErase: {
      // Secure erasure: application memory AND the measurement history.
      mem.write(app, 0, Bytes(app_size, 0x00), /*privileged=*/true);
      auto& store = prover.store();
      for (uint64_t slot = 0; slot < store.capacity(); ++slot) {
        store.tamper_erase(slot);  // same primitive; here used legitimately
      }
      break;
    }
  }

  // Writing the image costs roughly a flash-write pass over the region.
  return config.profile.store_read_time(app_size) +
         config.profile.request_auth_time();
}

bool MaintenanceAuthority::attest_now(Prover& prover,
                                      ByteView expected_digest) {
  const uint64_t now_ticks = prover.rroc().read();
  const OdRequest req = make_od_request(record_, now_ticks, 0);
  const auto res = prover.handle_od(req);
  if (!res.response) return false;
  if (!verify_measurement(record_.algo, record_.key, res.response->fresh)) {
    return false;
  }
  return equal(res.response->fresh.digest, expected_digest);
}

MaintenanceAuthority::UpdateOutcome MaintenanceAuthority::run_update(
    Prover& prover, ByteView new_image) {
  UpdateOutcome outcome;
  const auto algo = record_.algo;

  // 1. Attest BEFORE: never push an update onto a compromised device.
  outcome.pre_attestation_ok = attest_now(prover, record_.golden());
  if (!outcome.pre_attestation_ok) return outcome;

  // Each OD request needs a strictly fresher t_req (anti-replay), so let
  // one RROC tick elapse between protocol steps.
  queue_.run_until(queue_.now() + prover.rroc().tick());

  // 2. Authenticated install.
  MaintenanceRequest req;
  req.op = MaintenanceRequest::Op::kUpdate;
  req.treq = prover.rroc().read();
  req.image.assign(new_image.begin(), new_image.end());
  const Bytes image_digest = crypto::Hash::digest(hash_for(algo), req.image);
  req.mac = crypto::Mac::compute(
      algo, record_.key,
      MaintenanceRequest::mac_input(req.op, req.treq, image_digest, algo));
  outcome.request_accepted = handle_maintenance(prover, req).has_value();
  if (!outcome.request_accepted) return outcome;

  queue_.run_until(queue_.now() + prover.rroc().tick());

  // 3. Predict the post-update digest (image zero-padded to the region)
  //    and attest AFTER.
  Bytes padded(new_image.begin(), new_image.end());
  padded.resize(prover.memory().region_size(prover.attested_region()), 0x00);
  outcome.new_golden_digest = crypto::Hash::digest(hash_for(algo), padded);
  outcome.post_attestation_ok =
      attest_now(prover, outcome.new_golden_digest);

  // 4. Rotate the verifier's reference state from the install time on;
  //    pre-update history keeps verifying against the previous epoch.
  if (outcome.post_attestation_ok) {
    record_.rotate_golden(outcome.new_golden_digest, req.treq);
  }
  return outcome;
}

MaintenanceAuthority::EraseOutcome MaintenanceAuthority::run_erase(
    Prover& prover) {
  EraseOutcome outcome;
  const auto algo = record_.algo;

  MaintenanceRequest req;
  req.op = MaintenanceRequest::Op::kErase;
  req.treq = prover.rroc().read();
  const Bytes empty_digest = crypto::Hash::digest(hash_for(algo), {});
  req.mac = crypto::Mac::compute(
      algo, record_.key,
      MaintenanceRequest::mac_input(req.op, req.treq, empty_digest, algo));
  outcome.request_accepted = handle_maintenance(prover, req).has_value();
  if (!outcome.request_accepted) return outcome;

  queue_.run_until(queue_.now() + prover.rroc().tick());

  const Bytes zeroised(
      prover.memory().region_size(prover.attested_region()), 0x00);
  outcome.erased_state_proven =
      attest_now(prover, crypto::Hash::digest(hash_for(algo), zeroised));
  return outcome;
}

}  // namespace erasmus::attest
