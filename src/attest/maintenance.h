// Software update and secure-erasure flows.
//
// The paper's NOTE (§1): ERASMUS does not replace on-demand attestation --
// "for some devices and some settings, real-time on-demand attestation is
// mandatory, e.g., immediately before or after a software update or for
// secure erasure/reset." This module implements those maintenance flows on
// top of the ERASMUS+OD machinery:
//
//   update:  attest-before (fresh OD measurement, must be healthy)
//            -> authenticated image install -> attest-after (must match the
//            new image) -> verifier rotates its golden digest.
//
//   erase:   authenticated erase command -> prover zeroises application
//            memory AND the measurement store in protected mode -> fresh OD
//            measurement proves the erased state.
#pragma once

#include "attest/directory.h"
#include "attest/prover.h"

namespace erasmus::attest {

/// Authenticated maintenance command (update or erase). The MAC covers the
/// operation tag, the timestamp and the image digest, so a MITM can neither
/// replay an old update nor swap the payload.
struct MaintenanceRequest {
  enum class Op : uint8_t { kUpdate = 1, kErase = 2 };

  Op op = Op::kUpdate;
  uint64_t treq = 0;
  Bytes image;  // new software image (empty for erase)
  Bytes mac;

  static Bytes mac_input(Op op, uint64_t treq, ByteView image_digest,
                         crypto::MacAlgo algo);

  Bytes serialize() const;
  static std::optional<MaintenanceRequest> deserialize(ByteView data);
};

/// Prover-side handling: verifies freshness + MAC inside the protected
/// environment, then installs/erases. Returns the time charged; nullopt
/// when the request was rejected (no state change).
std::optional<sim::Duration> handle_maintenance(Prover& prover,
                                                const MaintenanceRequest& req);

/// Verifier-side orchestration of the full §1-NOTE flow, judging and
/// rotating the device's DeviceRecord through the shared verifier core
/// (link the record into a DeviceDirectory and the rotation is visible to
/// any AttestationService overseeing the device).
class MaintenanceAuthority {
 public:
  /// `record` must outlive the authority; run_update() rotates its golden
  /// epochs in place on success.
  MaintenanceAuthority(DeviceRecord& record, sim::EventQueue& queue)
      : record_(record), queue_(queue) {}

  struct UpdateOutcome {
    bool pre_attestation_ok = false;   // device healthy before the update
    bool request_accepted = false;     // prover verified and installed
    bool post_attestation_ok = false;  // device measures as the new image
    Bytes new_golden_digest;
  };

  /// Runs attest-update-attest against a (directly reachable) prover.
  /// On full success the verifier's golden digest is rotated.
  UpdateOutcome run_update(Prover& prover, ByteView new_image);

  struct EraseOutcome {
    bool request_accepted = false;
    bool erased_state_proven = false;  // fresh measurement matches zeroised
  };

  /// Runs authenticated secure erasure + proof of erasure.
  EraseOutcome run_erase(Prover& prover);

 private:
  /// Fresh on-demand measurement, compared against `expected_digest`.
  bool attest_now(Prover& prover, ByteView expected_digest);

  DeviceRecord& record_;
  sim::EventQueue& queue_;
};

}  // namespace erasmus::attest
