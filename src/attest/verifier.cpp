#include "attest/verifier.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace erasmus::attest {

std::string to_string(MeasurementStatus s) {
  switch (s) {
    case MeasurementStatus::kHealthy:
      return "healthy";
    case MeasurementStatus::kInfected:
      return "infected";
    case MeasurementStatus::kBadMac:
      return "bad-mac";
    case MeasurementStatus::kOffSchedule:
      return "off-schedule";
  }
  return "unknown";
}

Verifier::Verifier(VerifierConfig config) : config_(std::move(config)) {
  if (config_.key.empty()) {
    throw std::invalid_argument("Verifier: key K required");
  }
  goldens_.emplace_back(0, config_.golden_digest);
}

void Verifier::set_schedule(const Scheduler* scheduler, uint64_t t0_ticks) {
  scheduler_ = scheduler;
  schedule_t0_ = t0_ticks;
}

void Verifier::set_golden_digest(Bytes digest) {
  config_.golden_digest = digest;
  goldens_.assign(1, {0, std::move(digest)});
}

void Verifier::rotate_golden_digest(Bytes digest, uint64_t from_ticks) {
  if (!goldens_.empty() && from_ticks < goldens_.back().first) {
    throw std::invalid_argument(
        "rotate_golden_digest: epochs must be appended in time order");
  }
  config_.golden_digest = digest;
  goldens_.emplace_back(from_ticks, std::move(digest));
}

const Bytes& Verifier::golden_digest_at(uint64_t t_ticks) const {
  // Latest epoch whose start is <= t_ticks (epochs sorted ascending).
  for (auto it = goldens_.rbegin(); it != goldens_.rend(); ++it) {
    if (it->first <= t_ticks) return it->second;
  }
  return goldens_.front().second;
}

const Bytes& Verifier::golden_digest() const {
  return goldens_.back().second;
}

MeasurementVerdict Verifier::judge(const Measurement& m) const {
  MeasurementVerdict v{m, MeasurementStatus::kBadMac};
  if (!verify_measurement(config_.algo, config_.key, m)) {
    return v;
  }
  v.status = equal(m.digest, golden_digest_at(m.timestamp))
                 ? MeasurementStatus::kHealthy
                 : MeasurementStatus::kInfected;
  return v;
}

CollectionReport Verifier::verify_collection(const CollectResponse& resp,
                                             sim::Time now,
                                             size_t expected_k) const {
  CollectionReport report;
  report.verdicts.reserve(resp.measurements.size());

  // Expected timestamps, if a schedule is registered.
  std::unordered_set<uint64_t> expected_times;
  std::vector<uint64_t> expected_seq;
  if (scheduler_) {
    const uint64_t now_ticks = now.ns() / config_.tick.ns();
    expected_seq =
        expected_schedule(*scheduler_, schedule_t0_, now_ticks, config_.tick);
    expected_times.insert(expected_seq.begin(), expected_seq.end());
  }

  uint64_t prev_t = UINT64_MAX;  // responses are newest-first: decreasing
  bool order_ok = true;
  std::optional<uint64_t> newest_authentic;

  for (const auto& m : resp.measurements) {
    MeasurementVerdict v = judge(m);
    if (v.status != MeasurementStatus::kBadMac) {
      if (scheduler_ && !expected_times.contains(m.timestamp)) {
        // Authentic MAC over a timestamp the schedule never produced: a
        // replayed/displaced record (e.g. the §3.4 clock attack).
        v.status = MeasurementStatus::kOffSchedule;
        report.tampering_detected = true;
      } else {
        if (!newest_authentic) newest_authentic = m.timestamp;
        if (v.status == MeasurementStatus::kInfected) {
          report.infection_detected = true;
        }
      }
      if (m.timestamp >= prev_t) order_ok = false;
      prev_t = m.timestamp;
    } else {
      report.tampering_detected = true;
    }
    report.verdicts.push_back(std::move(v));
  }

  if (!order_ok) {
    report.tampering_detected = true;
    report.note += "reordered history; ";
  }

  if (expected_k > 0 && resp.measurements.size() < expected_k) {
    // Short response: fewer records than requested. Only incriminating once
    // the device has been up long enough to have produced them.
    if (!expected_seq.empty() && expected_seq.size() >= expected_k) {
      report.tampering_detected = true;
      report.missing += expected_k - resp.measurements.size();
      report.note += "short response; ";
    }
  }

  // Gap analysis: within the span covered by the response, every expected
  // time must be present (a deleted record leaves a hole).
  if (scheduler_ && !resp.measurements.empty()) {
    std::unordered_set<uint64_t> returned;
    for (const auto& m : resp.measurements) returned.insert(m.timestamp);
    const uint64_t oldest = resp.measurements.back().timestamp;
    const uint64_t newest = resp.measurements.front().timestamp;
    for (uint64_t t : expected_seq) {
      if (t > oldest && t < newest && !returned.contains(t)) {
        ++report.missing;
        report.tampering_detected = true;
      }
    }
    if (report.missing > 0) report.note += "schedule gap; ";
  }

  if (newest_authentic) {
    const sim::Time t(*newest_authentic * config_.tick.ns());
    report.freshness = now - t;
  } else {
    report.tampering_detected = true;
    report.note += "no authentic measurement; ";
  }

  return report;
}

OdRequest Verifier::make_od_request(uint64_t now_ticks, uint32_t k) const {
  OdRequest req;
  req.treq = now_ticks;
  req.k = k;
  req.mac = crypto::Mac::compute(config_.algo, config_.key,
                                 OdRequest::mac_input(req.treq, req.k));
  return req;
}

Verifier::OdReport Verifier::verify_od_response(const OdResponse& resp,
                                                sim::Time now,
                                                uint64_t treq) const {
  OdReport report;
  report.fresh = judge(resp.fresh);
  // The fresh measurement must be authentic and taken at or after t_req.
  report.fresh_valid =
      report.fresh.status != MeasurementStatus::kBadMac &&
      resp.fresh.timestamp >= treq;
  CollectResponse history{resp.history};
  report.history = verify_collection(history, now);
  if (report.fresh.status == MeasurementStatus::kInfected) {
    report.history.infection_detected = true;
  }
  return report;
}

}  // namespace erasmus::attest
