#include "attest/verifier.h"

#include <stdexcept>

namespace erasmus::attest {

Verifier::Verifier(VerifierConfig config) : config_(std::move(config)) {
  if (config_.key.empty()) {
    throw std::invalid_argument("Verifier: key K required");
  }
  record_.algo = config_.algo;
  record_.key = config_.key;
  record_.tick = config_.tick;
  record_.goldens.emplace_back(0, config_.golden_digest);
}

void Verifier::set_schedule(const Scheduler* scheduler, uint64_t t0_ticks) {
  record_.scheduler = scheduler;
  record_.schedule_t0 = t0_ticks;
}

void Verifier::set_golden_digest(Bytes digest) {
  config_.golden_digest = digest;  // config() mirrors the latest epoch
  record_.set_golden(std::move(digest));
}

void Verifier::rotate_golden_digest(Bytes digest, uint64_t from_ticks) {
  record_.rotate_golden(digest, from_ticks);  // throws before any mutation
  config_.golden_digest = std::move(digest);
}

const Bytes& Verifier::golden_digest_at(uint64_t t_ticks) const {
  return record_.golden_at(t_ticks);
}

const Bytes& Verifier::golden_digest() const { return record_.golden(); }

CollectionReport Verifier::verify_collection(const CollectResponse& resp,
                                             sim::Time now,
                                             size_t expected_k) const {
  return attest::verify_collection(record_, resp, now, expected_k);
}

OdRequest Verifier::make_od_request(uint64_t now_ticks, uint32_t k) const {
  return attest::make_od_request(record_, now_ticks, k);
}

Verifier::OdReport Verifier::verify_od_response(const OdResponse& resp,
                                                sim::Time now,
                                                uint64_t treq) const {
  return attest::verify_od_response(record_, resp, now, treq);
}

}  // namespace erasmus::attest
