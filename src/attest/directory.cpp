#include "attest/directory.h"

#include <stdexcept>
#include <unordered_set>

namespace erasmus::attest {

std::string to_string(MeasurementStatus s) {
  switch (s) {
    case MeasurementStatus::kHealthy:
      return "healthy";
    case MeasurementStatus::kInfected:
      return "infected";
    case MeasurementStatus::kBadMac:
      return "bad-mac";
    case MeasurementStatus::kOffSchedule:
      return "off-schedule";
  }
  return "unknown";
}

void DeviceRecord::set_golden(Bytes digest) {
  goldens.assign(1, {0, std::move(digest)});
}

void DeviceRecord::rotate_golden(Bytes digest, uint64_t from_ticks) {
  if (!goldens.empty() && from_ticks < goldens.back().first) {
    throw std::invalid_argument(
        "rotate_golden: epochs must be appended in time order");
  }
  goldens.emplace_back(from_ticks, std::move(digest));
}

const Bytes& DeviceRecord::golden_at(uint64_t t_ticks) const {
  // Latest epoch whose start is <= t_ticks (epochs sorted ascending).
  for (auto it = goldens.rbegin(); it != goldens.rend(); ++it) {
    if (it->first <= t_ticks) return it->second;
  }
  return goldens.front().second;
}

const Bytes& DeviceRecord::golden() const { return goldens.back().second; }

MeasurementVerdict judge_measurement(const DeviceRecord& rec,
                                     const Measurement& m) {
  MeasurementVerdict v{m, MeasurementStatus::kBadMac};
  if (!verify_measurement(rec.algo, rec.key, m)) {
    return v;
  }
  v.status = equal(m.digest, rec.golden_at(m.timestamp))
                 ? MeasurementStatus::kHealthy
                 : MeasurementStatus::kInfected;
  return v;
}

CollectionReport verify_collection(const DeviceRecord& rec,
                                   const CollectResponse& resp, sim::Time now,
                                   size_t expected_k) {
  CollectionReport report;
  report.verdicts.reserve(resp.measurements.size());

  // Expected timestamps, if a schedule is registered.
  std::unordered_set<uint64_t> expected_times;
  std::vector<uint64_t> expected_seq;
  if (rec.scheduler) {
    const uint64_t now_ticks = now.ns() / rec.tick.ns();
    expected_seq = expected_schedule(*rec.scheduler, rec.schedule_t0,
                                     now_ticks, rec.tick);
    expected_times.insert(expected_seq.begin(), expected_seq.end());
  }

  uint64_t prev_t = UINT64_MAX;  // responses are newest-first: decreasing
  bool order_ok = true;
  std::optional<uint64_t> newest_authentic;

  for (const auto& m : resp.measurements) {
    MeasurementVerdict v = judge_measurement(rec, m);
    if (v.status != MeasurementStatus::kBadMac) {
      if (rec.scheduler && !expected_times.contains(m.timestamp)) {
        // Authentic MAC over a timestamp the schedule never produced: a
        // replayed/displaced record (e.g. the §3.4 clock attack).
        v.status = MeasurementStatus::kOffSchedule;
        report.tampering_detected = true;
      } else {
        if (!newest_authentic) newest_authentic = m.timestamp;
        if (v.status == MeasurementStatus::kInfected) {
          report.infection_detected = true;
        }
      }
      if (m.timestamp >= prev_t) order_ok = false;
      prev_t = m.timestamp;
    } else {
      report.tampering_detected = true;
    }
    report.verdicts.push_back(std::move(v));
  }

  if (!order_ok) {
    report.tampering_detected = true;
    report.note += "reordered history; ";
  }

  if (expected_k > 0 && resp.measurements.size() < expected_k) {
    // Short response: fewer records than requested. Only incriminating once
    // the device has been up long enough to have produced them.
    if (!expected_seq.empty() && expected_seq.size() >= expected_k) {
      report.tampering_detected = true;
      report.missing += expected_k - resp.measurements.size();
      report.note += "short response; ";
    }
  }

  // Gap analysis: within the span covered by the response, every expected
  // time must be present (a deleted record leaves a hole).
  if (rec.scheduler && !resp.measurements.empty()) {
    std::unordered_set<uint64_t> returned;
    for (const auto& m : resp.measurements) returned.insert(m.timestamp);
    const uint64_t oldest = resp.measurements.back().timestamp;
    const uint64_t newest = resp.measurements.front().timestamp;
    for (uint64_t t : expected_seq) {
      if (t > oldest && t < newest && !returned.contains(t)) {
        ++report.missing;
        report.tampering_detected = true;
      }
    }
    if (report.missing > 0) report.note += "schedule gap; ";
  }

  if (newest_authentic) {
    const sim::Time t(*newest_authentic * rec.tick.ns());
    report.freshness = now - t;
  } else {
    report.tampering_detected = true;
    report.note += "no authentic measurement; ";
  }

  return report;
}

OdRequest make_od_request(const DeviceRecord& rec, uint64_t now_ticks,
                          uint32_t k) {
  OdRequest req;
  req.treq = now_ticks;
  req.k = k;
  req.mac = crypto::Mac::compute(rec.algo, rec.key,
                                 OdRequest::mac_input(req.treq, req.k));
  return req;
}

OdReport verify_od_response(const DeviceRecord& rec, const OdResponse& resp,
                            sim::Time now, uint64_t treq) {
  OdReport report;
  report.fresh = judge_measurement(rec, resp.fresh);
  // The fresh measurement must be authentic and taken at or after t_req.
  report.fresh_valid = report.fresh.status != MeasurementStatus::kBadMac &&
                       resp.fresh.timestamp >= treq;
  CollectResponse history{resp.history};
  report.history = verify_collection(rec, history, now);
  if (report.fresh.status == MeasurementStatus::kInfected) {
    report.history.infection_detected = true;
  }
  return report;
}

namespace {
void validate_record(const DeviceRecord& record) {
  if (record.key.empty()) {
    throw std::invalid_argument("DeviceDirectory: record needs key K");
  }
  if (record.goldens.empty()) {
    throw std::invalid_argument(
        "DeviceDirectory: record needs a golden-digest epoch");
  }
}
}  // namespace

DeviceId DeviceDirectory::add(net::NodeId node, DeviceRecord record) {
  validate_record(record);
  Entry entry;
  entry.node = node;
  entry.owned = &arena_.emplace_back(std::move(record));
  entry.record = entry.owned;
  try {
    return insert(std::move(entry));
  } catch (...) {
    arena_.pop_back();  // duplicate node: don't leak the arena slot
    throw;
  }
}

DeviceId DeviceDirectory::link(net::NodeId node, const DeviceRecord* live) {
  if (live == nullptr) {
    throw std::invalid_argument("DeviceDirectory: null live record");
  }
  validate_record(*live);
  Entry entry;
  entry.node = node;
  entry.record = live;
  return insert(std::move(entry));
}

DeviceId DeviceDirectory::insert(Entry entry) {
  if (by_node_.contains(entry.node)) {
    throw std::invalid_argument(
        "DeviceDirectory: node already has an enrolled device");
  }
  const auto id = static_cast<DeviceId>(entries_.size());
  by_node_.emplace(entry.node, id);
  entries_.push_back(std::move(entry));
  return id;
}

const DeviceRecord& DeviceDirectory::record(DeviceId id) const {
  return *entries_.at(id).record;
}

DeviceRecord& DeviceDirectory::owned_record(DeviceId id) {
  Entry& entry = entries_.at(id);
  if (entry.owned == nullptr) {
    throw std::logic_error(
        "DeviceDirectory: linked record; mutate the live source");
  }
  return *entry.owned;
}

net::NodeId DeviceDirectory::node(DeviceId id) const {
  return entries_.at(id).node;
}

std::optional<DeviceId> DeviceDirectory::by_node(net::NodeId node) const {
  const auto it = by_node_.find(node);
  if (it == by_node_.end()) return std::nullopt;
  return it->second;
}

}  // namespace erasmus::attest
