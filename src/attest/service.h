// AttestationService: the unified verifier-side collection engine.
//
// One service multiplexes N concurrent collection sessions over one
// verifier endpoint -- the paper's one-verifier/many-unattended-provers
// shape (§3, §6). Each session runs the Fig. 2 loop as a small state
// machine (request -> timeout -> retry -> report or unreachable), judged
// by the shared verifier core against the device's DeviceRecord, and
// appended to that device's AuditLog. Batched rounds dispatch through a
// bounded in-flight window so a million-device round never floods the
// transport.
//
// Round policies:
//  * periodic    -- start() schedules a full-directory round every T_C,
//                   the Collector daemon behaviour generalised to fleets.
//  * single-shot -- collect_now() runs one round over a chosen device set
//                   at the current instant; over a DirectTransport every
//                   session completes synchronously (the Fleet
//                   collect-round semantics).
//  * on-demand   -- ServiceConfig::kind = kOnDemand makes rounds send
//                   authenticated ERASMUS+OD requests (Fig. 4) instead of
//                   plain collect requests.
//
// Responses are only accepted from the node a session is awaiting, with
// the MsgType the round expects, and only while the session is in flight;
// spoofed sources, stray/duplicate datagrams and undecodable payloads are
// counted and dropped without disturbing the session (the timeout/retry
// machinery recovers).
#pragma once

#include <deque>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "attest/audit.h"
#include "attest/directory.h"
#include "attest/transport.h"
#include "attest/window.h"
#include "common/parallel.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "sim/event_queue.h"

namespace erasmus::attest {

/// Which exchange a round runs per device.
enum class RoundKind : uint8_t {
  kCollect,   // Fig. 2: unauthenticated "collect k"
  kOnDemand,  // Fig. 4: authenticated t_req/k request, fresh M_0 + history
};

struct ServiceConfig {
  sim::Duration tc = sim::Duration::hours(1);  // periodic round interval
  uint32_t k = 8;                              // records per request
  sim::Duration response_timeout = sim::Duration::seconds(2);
  int max_retries = 2;      // per session, after the first attempt
  /// Bounded dispatch window per round: fixed (window.fixed slots,
  /// the default) or AIMD-adaptive (window.adaptive = true; see
  /// attest/window.h). Loss timeouts and relay-queue congestion damp an
  /// adaptive window; on-time responses grow it back.
  WindowConfig window;
  RoundKind kind = RoundKind::kCollect;
  /// Keep full per-device audit logs. Turn off for huge fleets where the
  /// caller aggregates through the observer instead.
  bool keep_audit = true;
  /// Flight recorder for round/dispatch/window events (categories kService
  /// and kWindow). Not owned; nullptr = no tracing.
  obs::TraceRecorder* trace = nullptr;
  /// Metrics registry; the service registers its session counters and the
  /// per-device response-latency histogram under subsystem "service" (the
  /// window trajectory gauge under "window"). Not owned; nullptr = off.
  obs::Registry* metrics = nullptr;
  /// Verifier-core executor for batched report verification (kCollect
  /// rounds). Responses a broadcast delivers synchronously are taken in
  /// without judging, their MACs verified in bulk after the broadcast
  /// returns -- chunked per MAC algorithm, so each worker runs one arch
  /// family's code path -- and the sessions then completed in intake
  /// order. Verdicts, stats and traces are byte-identical to the inline
  /// per-session path (verification is a pure function; only its wall
  /// placement moves). Asynchronous transports are unaffected: their
  /// responses arrive outside any broadcast and verify inline as before.
  /// Not owned; nullptr = always verify inline.
  common::ParallelExecutor* verify_executor = nullptr;
};

class AttestationService {
 public:
  /// Everything a finished session establishes; streamed to the observer
  /// and returned by collect_now() for synchronously-completed sessions.
  struct SessionOutcome {
    DeviceId device = 0;
    sim::Time at;              // completion time
    bool reachable = false;    // false: retry budget exhausted
    int attempts = 0;
    CollectionReport report;   // empty when unreachable
    /// kOnDemand only: fresh measurement authentic and current.
    bool fresh_valid = false;
    /// Completed via a cluster head's healthy bit (hierarchical
    /// collection): the report is an empty placeholder -- the head
    /// vouched for the digest, not for per-measurement history.
    bool aggregated = false;
  };
  using Observer = std::function<void(const SessionOutcome&)>;

  /// Lifetime counters, accumulated across every round the service ran.
  struct Stats {
    uint64_t rounds = 0;
    uint64_t sessions = 0;
    uint64_t responses = 0;
    uint64_t retries = 0;
    uint64_t unreachable_sessions = 0;
    /// Spoofed source, unexpected MsgType, undecodable or duplicate
    /// responses -- dropped without touching any session.
    uint64_t stray_datagrams = 0;
    /// Lifetime high-water mark; RoundStats::max_in_flight has the
    /// per-round value.
    uint64_t max_in_flight_seen = 0;
    /// Adaptive-window backoffs (0 when the window is fixed).
    uint64_t loss_backoffs = 0;
    uint64_t congestion_backoffs = 0;
    /// Hierarchical collection: sessions closed by a head's healthy bit,
    /// and per-device evidence fetches forced by a cleared bit.
    uint64_t aggregated_sessions = 0;
    uint64_t demand_fetches = 0;
  };

  /// Per-round counters, reset when a round begins (a periodic round, a
  /// collect_now). Unlike Stats these describe ONE round, so scenario
  /// metric tables can emit round rows without differencing lifetime
  /// counters.
  struct RoundStats {
    uint64_t sessions = 0;
    uint64_t responses = 0;
    uint64_t retries = 0;
    uint64_t unreachable_sessions = 0;
    uint64_t max_in_flight = 0;
    /// Window trajectory inside the round: smallest/largest value the
    /// AIMD controller visited, and the window at round end (== the fixed
    /// size when adaptivity is off).
    uint64_t window_min = 0;
    uint64_t window_max = 0;
    uint64_t window_final = 0;
    uint64_t loss_backoffs = 0;
    uint64_t congestion_backoffs = 0;
    uint64_t aggregated_sessions = 0;
    uint64_t demand_fetches = 0;
  };

  /// The service takes exclusive ownership of `transport`'s receiver:
  /// exactly one service per transport instance (a second one would
  /// silently steal the first one's deliveries).
  AttestationService(sim::EventQueue& queue, Transport& transport,
                     DeviceDirectory& directory, ServiceConfig config);
  /// Cancels pending timeouts and detaches from the transport so nothing
  /// fires into a destroyed service if the queue keeps running.
  ~AttestationService();

  // --- Periodic policy -------------------------------------------------------
  /// Schedules the first full-directory round one T_C from now.
  void start();
  /// Quiesces immediately: cancels the next round AND aborts in-flight
  /// sessions (nothing further is sent or recorded; late responses count
  /// as stray datagrams).
  void stop();

  // --- Single-shot policy ----------------------------------------------------
  /// Runs one round over `devices` (ids into the directory) right now,
  /// requesting `k` records each (nullopt: config k). Returns the outcomes
  /// of sessions that completed before this call returned -- all of them
  /// over a DirectTransport whose targets are attached and reply (a silent
  /// direct endpoint resolves later through the timeout path, like any
  /// lost datagram); typically none over a NetworkTransport, where results
  /// arrive later via the observer and audit logs as the caller runs the
  /// event queue.
  std::vector<SessionOutcome> collect_now(
      const std::vector<DeviceId>& devices,
      std::optional<uint32_t> k = std::nullopt);

  bool round_in_progress() const { return round_active_; }

  // --- Hierarchical collection ----------------------------------------------
  /// Closes `node`'s in-flight session on the strength of a cluster
  /// head's healthy bit (caller has already authenticated the aggregate).
  /// The outcome carries an empty report with `aggregated` set -- the
  /// head vouched for the digest, not for history or freshness. Returns
  /// false (counted as a stray) when no session awaits the node.
  bool complete_aggregated(net::NodeId node);
  /// A cleared bit (or root mismatch) demands the device's raw evidence:
  /// spends one retry NOW as a scoped per-device send instead of waiting
  /// for the session's timeout. With the retry budget already exhausted
  /// the session is left to its armed timeout. Returns false when no
  /// session awaits the node.
  bool demand_fetch(net::NodeId node);

  /// Per-device longitudinal record. Empty when keep_audit is off or no
  /// round has reached the device yet.
  const AuditLog& log(DeviceId id) const {
    static const AuditLog kEmpty;
    return id < logs_.size() ? logs_[id] : kEmpty;
  }

  /// Streamed per-session results (scenario metrics bridge). The observer
  /// runs at session completion time, after the audit log was appended.
  void set_observer(Observer observer) { observer_ = std::move(observer); }

  const Stats& stats() const { return stats_; }
  /// Stats of the round in progress (or the last finished round).
  const RoundStats& round_stats() const { return round_stats_; }
  /// Current dispatch window (moves only when window.adaptive is set).
  size_t window() const { return window_ctl_.window(); }
  const ServiceConfig& config() const { return config_; }

 private:
  struct Session {
    DeviceId device = 0;
    net::NodeId node = 0;
    int attempts = 0;
    /// Dispatch instant of the FIRST attempt; completion minus this is the
    /// per-device response latency the obs histogram records.
    sim::Time started;
    /// WindowController stamp of the LATEST attempt; a timeout reports
    /// it so correlated losses of one dispatch wave cut the window once.
    uint64_t send_seq = 0;
    /// kOnDemand: the FIRST attempt's request timestamp. Responses are
    /// judged against it so a slow answer to attempt 1 arriving after a
    /// retry is still fresh-since-we-asked, not "tampering".
    uint64_t treq = 0;
    /// Batched verify: a response for this session sits in verify_intake_
    /// awaiting the bulk MAC pass; a second response meanwhile is a
    /// duplicate (stray), exactly as the inline path would count it.
    bool intaken = false;
    std::optional<sim::EventId> timeout;
  };

  void begin_periodic_round();
  /// Throws (round in progress, duplicate/unknown target) BEFORE any
  /// member state is mutated, so callers stay consistent on failure.
  void admit_round(const std::vector<DeviceId>& devices);
  void begin_round(const std::vector<DeviceId>& devices, uint32_t k);
  /// Dispatches pending sessions up to the in-flight window, batching
  /// identical first-attempt requests into one transport broadcast.
  void pump();
  void send_attempt(Session& session);
  /// Retry coalescing over flood transports: a dispatch wave's sessions
  /// time out at the same instant, so their retries are collected here
  /// and flushed as ONE broadcast (one re-flood instead of one per
  /// device) by a zero-delay event that runs after the whole wave's
  /// timeouts (FIFO within a timestamp).
  void queue_retry(Session& session);
  void flush_retries();
  void arm_timeout(Session& session);
  void on_receive(net::NodeId src, MsgType type, ByteView body);
  void on_timeout(net::NodeId node);
  /// Drains the transport's relay-queue occupancy signal and damps an
  /// adaptive window when it crosses the configured threshold.
  void poll_congestion();
  /// Mirrors the controller's window trajectory into round_stats_ (and the
  /// obs window gauge).
  void sync_window_stats();
  /// Registers the service's obs instruments (no-op without a registry).
  void register_instruments();
  /// kWindow category instant with the current window attached.
  void trace_window(const char* name, const char* reason);
  void complete(net::NodeId node, bool reachable, CollectionReport report,
                bool fresh_valid, bool aggregated = false);
  /// Bulk-verifies everything in verify_intake_ on the verify executor
  /// (chunked, grouped by MAC algorithm) and completes the sessions in
  /// intake order -- the exact order the inline path would have judged
  /// them. Runs after a broadcast returns, inside the pump's guard.
  void flush_deferred_verifies();
  void finish_round();

  sim::EventQueue& queue_;
  Transport& transport_;
  DeviceDirectory& directory_;
  ServiceConfig config_;

  std::vector<AuditLog> logs_;  // indexed by DeviceId; grown on demand
  Observer observer_;

  bool running_ = false;  // periodic policy armed
  std::optional<sim::EventId> next_round_event_;

  std::deque<DeviceId> pending_;
  uint32_t round_k_ = 0;  // one uniform k per round, by construction
  /// Batched verify (kCollect over synchronous transports): responses
  /// delivered DURING a broadcast are parked here instead of being judged
  /// inline, then flushed through the verify executor in one bulk pass.
  struct PendingVerify {
    net::NodeId node = 0;
    DeviceId device = 0;
    CollectResponse resp;
  };
  std::vector<PendingVerify> verify_intake_;
  bool defer_verify_ = false;  // true only while a broadcast is on the stack
  std::vector<net::NodeId> retry_batch_;
  std::optional<sim::EventId> retry_flush_event_;
  std::unordered_map<net::NodeId, Session> active_;
  size_t in_flight_ = 0;
  bool pumping_ = false;
  bool round_active_ = false;
  bool round_periodic_ = false;
  std::vector<SessionOutcome>* sync_outcomes_ = nullptr;

  WindowController window_ctl_{WindowConfig{}};
  Stats stats_;
  RoundStats round_stats_;

  /// obs instruments (all null without ServiceConfig::metrics).
  struct {
    obs::Counter* sessions = nullptr;
    obs::Counter* responses = nullptr;
    obs::Counter* retries = nullptr;
    obs::Counter* unreachable = nullptr;
    obs::Counter* stray_datagrams = nullptr;
    obs::Counter* loss_backoffs = nullptr;
    obs::Counter* congestion_backoffs = nullptr;
    obs::Histogram* latency_ms = nullptr;
    obs::Gauge* window = nullptr;
  } inst_;
};

}  // namespace erasmus::attest
