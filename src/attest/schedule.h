// Measurement scheduling policies (paper §3.1, §3.5 and §5).
//
// * RegularScheduler: fixed T_M between measurements -- the baseline.
// * IrregularScheduler (§3.5): the next interval is
//       T_M^next = map(CSPRNG_K(t_i)),  map: x -> x mod (U - L) + L
//   realised with an HMAC-DRBG keyed by the device key K and the timestamp
//   of the just-completed measurement. Malware cannot read K, so it cannot
//   predict when the next measurement fires; the verifier CAN replay the
//   whole expected schedule from K.
// * LenientScheduler (§5): wraps a base policy with a window w*T_M; a
//   measurement aborted by a time-critical task is retried and must land by
//   the end of the current window.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "common/bytes.h"
#include "sim/time.h"

namespace erasmus::attest {

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Interval between the measurement taken at RROC value `t_ticks` and the
  /// next one.
  virtual sim::Duration next_interval(uint64_t t_ticks) const = 0;

  /// Nominal period (T_M for regular; midpoint of [L, U] for irregular).
  /// Used for buffer sizing and QoA math.
  virtual sim::Duration nominal_period() const = 0;

  /// True when the schedule is a deterministic function of public
  /// information (regular schedules) -- i.e. when schedule-aware malware
  /// can dodge it (paper §3.5).
  virtual bool predictable_without_key() const = 0;
};

class RegularScheduler final : public Scheduler {
 public:
  explicit RegularScheduler(sim::Duration tm);

  sim::Duration next_interval(uint64_t) const override { return tm_; }
  sim::Duration nominal_period() const override { return tm_; }
  bool predictable_without_key() const override { return true; }

  sim::Duration tm() const { return tm_; }

 private:
  sim::Duration tm_;
};

class IrregularScheduler final : public Scheduler {
 public:
  /// `key`: the device key K (shared with the verifier, who replays the
  /// schedule). Interval bounds L <= interval < U, at `tick` granularity.
  IrregularScheduler(Bytes key, sim::Duration lower, sim::Duration upper,
                     sim::Duration tick = sim::Duration::seconds(1));

  sim::Duration next_interval(uint64_t t_ticks) const override;
  sim::Duration nominal_period() const override;
  bool predictable_without_key() const override { return false; }

  sim::Duration lower() const { return lower_; }
  sim::Duration upper() const { return upper_; }

 private:
  Bytes key_;
  sim::Duration lower_;
  sim::Duration upper_;
  sim::Duration tick_;
};

class LenientScheduler final : public Scheduler {
 public:
  /// `window_factor` is w >= 1: a measurement nominally due at t may slip
  /// anywhere inside [t, t + (w-1)*T_M] when the device is busy with
  /// time-critical work.
  LenientScheduler(std::unique_ptr<Scheduler> base, double window_factor);

  sim::Duration next_interval(uint64_t t_ticks) const override {
    return base_->next_interval(t_ticks);
  }
  sim::Duration nominal_period() const override {
    return base_->nominal_period();
  }
  bool predictable_without_key() const override {
    return base_->predictable_without_key();
  }

  /// Extra slack available past the nominal due time.
  sim::Duration window_slack() const;
  double window_factor() const { return window_factor_; }

 private:
  std::unique_ptr<Scheduler> base_;
  double window_factor_;
};

/// Replays the expected measurement times from an anchor: t_0, t_1 = t_0 +
/// interval(t_0)/tick, ... up to and including the last time <= t_end.
/// This is the verifier-side counterpart of the prover's timer programming
/// (both sides share K, so irregular schedules replay identically).
std::vector<uint64_t> expected_schedule(const Scheduler& sched,
                                        uint64_t t0_ticks, uint64_t t_end_ticks,
                                        sim::Duration tick);

}  // namespace erasmus::attest
