// The ERASMUS prover device.
//
// Owns the pieces Fig. 5(b)/7(b) show on Prv: the security architecture
// (SMART+ or HYDRA), the RROC, a hardware timer that autonomously triggers
// self-measurements, the rolling measurement store in unprotected memory,
// and the (unprotected) collection-phase request handling.
//
// Timing model: every operation charges virtual time from the device's
// DeviceProfile. A measurement makes the device busy for its full duration
// (the availability concern of §5); collection requests arriving while busy
// are served when the measurement completes.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "attest/measurement_store.h"
#include "attest/protocol.h"
#include "attest/schedule.h"
#include "hw/arch.h"
#include "hw/rroc.h"
#include "hw/timer.h"
#include "net/network.h"
#include "sim/device_profile.h"
#include "sim/event_queue.h"

namespace erasmus::attest {

/// What the prover does when the measurement timer fires during a
/// time-critical task (paper §5).
enum class ConflictPolicy {
  kMeasureAnyway,        // strict schedule; steals time from the task
  kAbortAndReschedule,   // lenient: retry at task end, within w*T_M window
  kSkip,                 // drop this measurement entirely (worst for QoA)
};

struct ProverConfig {
  crypto::MacAlgo algo = crypto::MacAlgo::kHmacSha256;
  sim::DeviceProfile profile = sim::DeviceProfile::msp430_8mhz();
  sim::Duration rroc_tick = sim::Duration::seconds(1);
  /// OD request timestamps older than this (in RROC ticks) are rejected.
  uint64_t od_freshness_window_ticks = 10;
  /// Build the RROC without write protection -- ONLY for reproducing the
  /// §3.4 attack in tests/benches.
  bool rroc_writable_for_attack_demo = false;
  ConflictPolicy conflict_policy = ConflictPolicy::kMeasureAnyway;
};

class Prover {
 public:
  /// `attested_region`: the memory the measurements cover (app RAM/flash).
  /// `store_region`: backing for the windowed measurement buffer.
  Prover(sim::EventQueue& queue, hw::SecurityArch& arch,
         hw::RegionId attested_region, hw::RegionId store_region,
         std::unique_ptr<Scheduler> scheduler, ProverConfig config);

  /// Arms the measurement timer. `initial_offset` staggers the first
  /// measurement (used for swarm scheduling, §6); the default fires after
  /// one full interval.
  void start(std::optional<sim::Duration> initial_offset = std::nullopt);
  void stop();

  // --- Collection phase (Fig. 2) -------------------------------------------
  struct CollectResult {
    CollectResponse response;
    /// Prover-side wall time: waiting out a busy measurement (if any) plus
    /// buffer read plus packet construction/send. NO cryptography.
    sim::Duration processing;
  };
  CollectResult handle_collect(const CollectRequest& req);

  // --- On-demand / ERASMUS+OD (Fig. 4) -------------------------------------
  struct OdResult {
    /// Empty when the request failed authentication or freshness (the
    /// protocol aborts silently -- anti-DoS).
    std::optional<OdResponse> response;
    sim::Duration processing;
  };
  OdResult handle_od(const OdRequest& req);

  // --- Network binding ------------------------------------------------------
  /// Attaches the prover to a simulated network node: incoming datagrams
  /// are dispatched to the handlers above and replies are sent back to the
  /// requester after the prover-side processing delay.
  void bind(net::Network& network, net::NodeId id);
  net::NodeId node_id() const { return node_id_; }

  // --- Time-critical task model (§5) ---------------------------------------
  /// Declares a window during which the device must not be interrupted.
  void add_critical_task(sim::Time begin, sim::Duration length);

  struct Stats {
    uint64_t measurements = 0;
    uint64_t aborted = 0;      // deferred by the lenient policy
    uint64_t skipped = 0;      // dropped by ConflictPolicy::kSkip
    uint64_t collections = 0;
    uint64_t od_accepted = 0;
    uint64_t od_rejected = 0;
    sim::Duration total_measurement_time;  // cumulative busy time
    sim::Duration task_interference;       // measurement time inside tasks
    sim::Duration max_schedule_slip;       // worst lenient-mode deferral
  };
  const Stats& stats() const { return stats_; }

  // --- Introspection (verifier setup, malware models, tests) ---------------
  hw::SecurityArch& arch() { return arch_; }
  hw::DeviceMemory& memory() { return arch_.memory(); }
  hw::RegionId attested_region() const { return attested_region_; }
  MeasurementStore& store() { return store_; }
  const MeasurementStore& store() const { return store_; }
  hw::Rroc& rroc() { return rroc_; }
  const Scheduler& scheduler() const { return *scheduler_; }
  const ProverConfig& config() const { return config_; }
  /// Index of the most recent measurement (the `i` of Fig. 3).
  uint64_t latest_index() const { return latest_index_; }
  bool any_measurement_taken() const { return stats_.measurements > 0; }
  sim::Time busy_until() const { return busy_until_; }
  uint64_t attested_bytes() const;

  /// Observer invoked after each completed self-measurement with its RROC
  /// timestamp. Models side channels malware realistically has (activity /
  /// power traces reveal WHEN a measurement ran -- though never when the
  /// NEXT one will run, which is the point of irregular schedules).
  void set_measurement_observer(std::function<void(sim::Time, uint64_t)> fn) {
    measurement_observer_ = std::move(fn);
  }

 private:
  void on_timer();
  void perform_measurement();
  void schedule_next(uint64_t t_ticks);
  /// The critical task (if any) covering `at`.
  std::optional<std::pair<sim::Time, sim::Time>> task_covering(
      sim::Time at) const;
  sim::Duration overlap_with_tasks(sim::Time begin, sim::Time end) const;
  uint64_t slot_index_for(uint64_t t_ticks) const;

  sim::EventQueue& queue_;
  hw::SecurityArch& arch_;
  hw::RegionId attested_region_;
  MeasurementStore store_;
  std::unique_ptr<Scheduler> scheduler_;
  ProverConfig config_;
  hw::Rroc rroc_;
  hw::HwTimer timer_;

  net::Network* network_ = nullptr;
  net::NodeId node_id_ = 0;

  std::vector<std::pair<sim::Time, sim::Time>> critical_tasks_;
  sim::Time busy_until_ = sim::Time::zero();
  uint64_t latest_index_ = 0;
  uint64_t seq_ = 0;             // measurements taken (irregular slot index)
  uint64_t last_od_treq_ = 0;    // anti-replay watermark
  sim::Time nominal_due_ = sim::Time::zero();  // for slip accounting
  bool running_ = false;
  Stats stats_;
  std::function<void(sim::Time, uint64_t)> measurement_observer_;
};

}  // namespace erasmus::attest
