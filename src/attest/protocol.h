// Wire messages for the three protocols the paper specifies:
//
//  * ERASMUS collection (Fig. 2):    Vrf -> Prv: "collect k"
//                                    Prv -> Vrf: k stored measurements
//    -- carries NO authentication: collection triggers no computation, so
//    there is no DoS surface and verifier requests need no MAC (§3).
//
//  * ERASMUS+OD (Fig. 4):            Vrf -> Prv: t_req, k, MAC_K(t_req)
//                                    Prv -> Vrf: fresh M_0 plus k stored
//    -- the request is authenticated and freshness-checked (SMART+ anti-DoS)
//    because it triggers a real measurement.
//
//  * Pure on-demand baseline (SMART+ [5]): same request, response is the
//    single fresh measurement.
#pragma once

#include <optional>
#include <vector>

#include "attest/measurement.h"
#include "common/bytes.h"

namespace erasmus::attest {

enum class MsgType : uint8_t {
  kCollectRequest = 1,
  kCollectResponse = 2,
  kOdRequest = 3,       // authenticated; k == 0 -> pure on-demand
  kOdResponse = 4,
};

/// Fig. 2 request: "collect k" (k = number of most recent measurements).
struct CollectRequest {
  uint32_t k = 1;

  Bytes serialize() const;
  static std::optional<CollectRequest> deserialize(ByteView data);
};

/// Fig. 2 response: the stored measurements, newest first.
struct CollectResponse {
  std::vector<Measurement> measurements;

  Bytes serialize() const;
  static std::optional<CollectResponse> deserialize(ByteView data);
};

/// Fig. 4 request (also the SMART+ on-demand request when k == 0).
struct OdRequest {
  uint64_t treq = 0;  // verifier RROC-aligned timestamp
  uint32_t k = 0;     // how many stored measurements to include
  Bytes mac;          // MAC_K(treq | k)

  /// The MAC input binds both the timestamp and k (so a MITM cannot
  /// truncate the requested history).
  static Bytes mac_input(uint64_t treq, uint32_t k);

  Bytes serialize() const;
  static std::optional<OdRequest> deserialize(ByteView data);
};

/// Fig. 4 response: fresh measurement M_0 plus history M.
struct OdResponse {
  Measurement fresh;
  std::vector<Measurement> history;

  Bytes serialize() const;
  static std::optional<OdResponse> deserialize(ByteView data);
};

/// Frames a message with its type tag for transport over the network.
Bytes frame(MsgType type, ByteView body);
/// Splits a framed datagram payload into (type, body view into `data`).
std::optional<std::pair<MsgType, ByteView>> unframe(ByteView data);

}  // namespace erasmus::attest
