#include "attest/qoa.h"

#include <algorithm>
#include <stdexcept>

namespace erasmus::attest {

namespace {
uint64_t ceil_div(uint64_t a, uint64_t b) { return (a + b - 1) / b; }
}  // namespace

size_t QoAParams::measurements_per_collection() const {
  if (tm.is_zero()) throw std::invalid_argument("QoAParams: T_M must be > 0");
  return static_cast<size_t>(ceil_div(tc.ns(), tm.ns()));
}

bool QoAParams::buffer_safe(size_t n) const {
  return tc.ns() <= tm.ns() * static_cast<uint64_t>(n);
}

size_t QoAParams::min_buffer_slots() const {
  if (tm.is_zero()) throw std::invalid_argument("QoAParams: T_M must be > 0");
  return static_cast<size_t>(ceil_div(tc.ns(), tm.ns()));
}

double detection_prob_regular(sim::Duration dwell, sim::Duration tm) {
  if (tm.is_zero()) throw std::invalid_argument("tm must be > 0");
  const double p = static_cast<double>(dwell.ns()) /
                   static_cast<double>(tm.ns());
  return std::min(1.0, p);
}

double detection_prob_schedule_aware_regular(sim::Duration dwell,
                                             sim::Duration tm) {
  if (tm.is_zero()) throw std::invalid_argument("tm must be > 0");
  return dwell >= tm ? 1.0 : 0.0;
}

double detection_prob_schedule_aware_irregular(sim::Duration dwell,
                                               sim::Duration lower,
                                               sim::Duration upper) {
  if (upper <= lower) throw std::invalid_argument("need lower < upper");
  if (dwell <= lower) return 0.0;
  if (dwell >= upper) return 1.0;
  return static_cast<double>((dwell - lower).ns()) /
         static_cast<double>((upper - lower).ns());
}

}  // namespace erasmus::attest
