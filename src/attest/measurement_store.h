// Rolling measurement storage (paper §3.2 and Fig. 3).
//
// A fixed section of the prover's *insecure* storage holds a windowed
// (circular) buffer of n measurements; the i-th measurement lives at slot
// L_{i mod n}. The store is deliberately unprotected: resident malware may
// modify, reorder or delete records -- but it cannot forge them without K,
// so any tampering is self-incriminating at the next collection.
//
// Record layout (fixed width per MAC algorithm):
//   u8  valid flag (0x5A when written; 0x00 in erased/virgin slots)
//   u64 timestamp (little-endian RROC ticks)
//   digest bytes
//   mac bytes
#pragma once

#include <optional>
#include <vector>

#include "attest/measurement.h"
#include "hw/memory.h"

namespace erasmus::attest {

class MeasurementStore {
 public:
  static constexpr uint8_t kValidMarker = 0x5A;

  /// Binds the store to a region of device memory. Capacity n is
  /// region_size / record_size; the region must fit at least one record.
  MeasurementStore(hw::DeviceMemory& memory, hw::RegionId region,
                   crypto::MacAlgo algo);

  /// n: how many measurements fit before the window wraps.
  size_t capacity() const { return capacity_; }
  size_t record_size() const { return record_size_; }
  crypto::MacAlgo algo() const { return algo_; }

  /// Writes M at slot (index mod n). The paper computes the slot
  /// statelessly for regular schedules as i = floor(t / T_M) mod n; for
  /// irregular schedules the prover uses its measurement sequence number.
  void put(uint64_t index, const Measurement& m);

  /// Reads the record at slot (index mod n); nullopt when the slot was
  /// never written or its flag was wiped. NOTE: a successfully parsed
  /// record is NOT necessarily authentic -- verification happens at the
  /// verifier with K.
  std::optional<Measurement> get(uint64_t index) const;

  /// Collection-phase read: the k most recent records given the latest
  /// index i, i.e. slots (i - j) mod n for 0 <= j < k (paper Fig. 2).
  /// k is clamped to n. Slots that fail to parse are skipped (their absence
  /// is evidence of tampering for the verifier).
  std::vector<Measurement> latest(uint64_t latest_index, size_t k) const;

  /// Stateless slot computation for regular schedules (paper §3.2):
  /// i = floor(t / tm_ticks) mod n.
  uint64_t slot_for_time(uint64_t t, uint64_t tm_ticks) const;

  /// Bytes read from device storage to serve a k-record collection (for
  /// the cost model).
  uint64_t bytes_for(size_t k) const;

  // --- Tamper surface (used by malware models; all *unprivileged*) ---------

  /// Flips bits inside a stored record (MAC will no longer verify).
  void tamper_corrupt(uint64_t index, size_t byte_offset, uint8_t xor_mask);
  /// Erases a record entirely (clears the valid flag and contents).
  void tamper_erase(uint64_t index);
  /// Swaps two slots (reordering attack).
  void tamper_swap(uint64_t a, uint64_t b);
  /// Overwrites a slot with an arbitrary forged record.
  void tamper_overwrite(uint64_t index, const Measurement& forged);

 private:
  size_t offset_of(uint64_t index) const;
  void write_record(uint64_t index, const Measurement& m, uint8_t flag);

  hw::DeviceMemory& memory_;
  hw::RegionId region_;
  crypto::MacAlgo algo_;
  size_t digest_size_;
  size_t mac_size_;
  size_t record_size_;
  size_t capacity_;
};

}  // namespace erasmus::attest
