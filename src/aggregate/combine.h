// Head-side hold-and-combine: child reports in, one AggregateFrame out.
//
// The head holds the child CollectResponses that flow through it for a
// bounded aggregation window, judges each against its OWN latest
// self-measurement digest, and folds everything into the canonical
// AggregateFrame. The digest-equality judgment is sound exactly when the
// fleet runs a uniform image (every healthy device measures the same
// bytes): a diverging digest is not proof of infection -- the head holds
// no keys and proves nothing -- it is a cheap, unforgeable-to-improve
// triage signal. A cleared bit costs one demand fetch of raw evidence;
// a head lying with a SET bit is caught the moment that member's
// evidence is audited against the hash-tree root, and a head cannot
// clear bits to any effect beyond pushing members back onto the raw
// path it was supposed to compress.
#pragma once

#include <map>

#include "aggregate/frame.h"
#include "crypto/hash.h"

namespace erasmus::aggregate {

/// Evidence leaf for one member: H(origin_le32 || raw response bytes).
/// Binding the origin keeps two members with identical responses from
/// sharing a leaf (and an audited leaf from being replayed for another
/// device).
Bytes evidence_leaf(crypto::HashAlgo algo, net::NodeId origin,
                    ByteView response);

/// Hash-tree root over `leaves` in member order: pairwise H(left||right),
/// an odd tail promoted unchanged. Empty input -> all-zero digest.
Bytes hash_tree_root(crypto::HashAlgo algo, std::vector<Bytes> leaves);

class Combiner {
 public:
  /// `reference_digest`: the head's own latest measurement digest (the
  /// healthy-judgment yardstick). Empty = judge every member unhealthy.
  Combiner(crypto::HashAlgo hash, Bytes reference_digest);

  /// Absorbs one child report (the raw inner response bytes of a
  /// RelayReport). Duplicate origins keep the first evidence.
  void absorb(net::NodeId origin, ByteView response);

  size_t members() const { return entries_.size(); }
  uint64_t raw_bytes() const { return raw_bytes_; }

  /// Builds the canonical frame (sorted members, bitmap, root). `mac` is
  /// left empty: the head MACs inside its protected context, the only
  /// place its key is readable.
  AggregateFrame build(uint32_t flood, net::NodeId head) const;

 private:
  struct Entry {
    Bytes leaf;
    bool healthy = false;
  };

  crypto::HashAlgo hash_;
  Bytes reference_;
  std::map<net::NodeId, Entry> entries_;  // ordered => canonical members
  uint64_t raw_bytes_ = 0;
};

}  // namespace erasmus::aggregate
