#include "aggregate/election.h"

#include <algorithm>

namespace erasmus::aggregate {

bool is_head(const ElectionPolicy& policy, net::NodeId self, uint32_t depth) {
  const uint32_t stride = std::max<uint32_t>(1, policy.stride);
  switch (policy.mode) {
    case ElectionMode::kDepthBand:
      return depth > 0 && depth % stride == 0;
    case ElectionMode::kPlanned:
      return self % stride == 0;
  }
  return false;
}

}  // namespace erasmus::aggregate
