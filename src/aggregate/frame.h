// Authenticated cluster aggregates for hierarchical collection.
//
// At 10k+ devices, per-device relaying makes collection cost
// O(devices x hops): every CollectResponse transits the overlay tree
// individually. Hierarchical collection elects cluster heads inside the
// flood's parent tree (election.h); each head absorbs the child reports
// flowing through it and forwards ONE AggregateFrame instead -- a
// bitmap-of-healthy over the cluster, a hash-tree root committing to the
// raw per-member evidence, and a MAC under the head's own device key K.
// The verifier trusts set bits from an authenticated head, and
// demand-fetches raw evidence (a scoped/targeted re-collect) for any
// cleared bit, turning O(devices x hops) radio bytes into
// ~O(clusters x hops) plus a short raw hop per member.
//
// A head never vouches for itself: its own response is excluded from its
// aggregate and travels raw to the next head up the tree (or to the
// verifier), so a compromised head cannot whitewash its own state -- it
// can only force demand fetches, which are exactly the raw-evidence path.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/bytes.h"
#include "crypto/mac.h"
#include "net/network.h"

namespace erasmus::aggregate {

/// One cluster head's combined view of its children for one flood.
struct AggregateFrame {
  uint32_t flood = 0;
  net::NodeId head = 0;
  /// Cluster members in strictly ascending node order -- the canonical
  /// form; anything else is rejected on deserialize so bitmap bits are
  /// never ambiguous. The head itself is NOT a member (see header note).
  std::vector<net::NodeId> members;
  /// Bit i (LSB-first within each byte) = members[i] healthy per the
  /// head's judgment. Exactly (members + 7) / 8 bytes.
  Bytes bitmap;
  /// Hash-tree root over the per-member evidence leaves (combine.h). The
  /// verifier audits demand-fetched raw evidence against it.
  Bytes root;
  /// Raw child-report bytes absorbed into this aggregate: the numerator
  /// of the compression ratio the runner reports.
  uint32_t raw_bytes = 0;
  /// MAC_K_head(aggregate_mac_input) -- computed inside the head's
  /// protected context, the only place K is readable.
  Bytes mac;

  bool healthy(size_t i) const {
    return i / 8 < bitmap.size() && ((bitmap[i / 8] >> (i % 8)) & 1) != 0;
  }

  Bytes serialize() const;
  static std::optional<AggregateFrame> deserialize(ByteView data);
};

/// The canonical byte string the head MACs: every field above except the
/// mac itself.
Bytes aggregate_mac_input(const AggregateFrame& frame);

/// Verifier-side authentication with the head's directory key (constant
/// time).
bool verify_aggregate(const AggregateFrame& frame, crypto::MacAlgo algo,
                      ByteView key);

}  // namespace erasmus::aggregate
