// Cluster-head election for hierarchical collection.
//
// Two policies, both deterministic and coordination-free (unattended
// devices cannot run a leader-election protocol between rounds):
//
//  * kDepthBand -- heads fall out of each flood's parent-tree fan-out: a
//    node whose first-sight depth is a multiple of `stride` is a head for
//    that flood. Every node is at most `stride` raw hops below its
//    absorbing head, re-election after churn or a dead battery is just
//    the next flood (a dark node forwards nothing, so the tree -- and
//    with it the head set -- rebuilds around it), and no state outlives
//    the flood.
//  * kPlanned -- heads are fixed ahead of time from the fleet plan: every
//    `stride`-th device id. Immune to tree churn mid-round, but blind to
//    topology: a planned head can end up deeper than its children.
#pragma once

#include <cstdint>

#include "net/network.h"

namespace erasmus::aggregate {

enum class ElectionMode : uint8_t {
  kDepthBand,
  kPlanned,
};

struct ElectionPolicy {
  ElectionMode mode = ElectionMode::kDepthBand;
  /// kDepthBand: vertical distance between head bands (2 keeps one band
  /// of plain relays between heads). kPlanned: device-id stride.
  uint8_t stride = 2;
};

/// Is `self` a cluster head? `depth` is the node's first-sight flood
/// depth (>= 1; the verifier itself never serves).
bool is_head(const ElectionPolicy& policy, net::NodeId self, uint32_t depth);

}  // namespace erasmus::aggregate
