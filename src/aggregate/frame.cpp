#include "aggregate/frame.h"

#include <algorithm>

#include "common/serde.h"

namespace erasmus::aggregate {

namespace {

void write_members(ByteWriter& w, const std::vector<net::NodeId>& nodes) {
  w.u32(static_cast<uint32_t>(nodes.size()));
  for (const net::NodeId node : nodes) w.u32(node);
}

std::optional<std::vector<net::NodeId>> read_members(ByteReader& r) {
  const uint32_t count = r.u32();
  // 4 bytes per entry: a count the remaining input cannot cover is
  // malformed -- reject before reserving (adversarial frames must not
  // drive allocation).
  if (!r.ok() || count > r.remaining() / 4) return std::nullopt;
  std::vector<net::NodeId> nodes;
  nodes.reserve(count);
  for (uint32_t i = 0; i < count; ++i) nodes.push_back(r.u32());
  if (!r.ok()) return std::nullopt;
  return nodes;
}

}  // namespace

Bytes AggregateFrame::serialize() const {
  ByteWriter w;
  w.raw(aggregate_mac_input(*this));
  w.var_bytes(mac);
  return w.take();
}

std::optional<AggregateFrame> AggregateFrame::deserialize(ByteView data) {
  ByteReader r(data);
  AggregateFrame f;
  f.flood = r.u32();
  f.head = r.u32();
  auto members = read_members(r);
  if (!members) return std::nullopt;
  f.members = std::move(*members);
  // Canonical member order: strictly ascending, so a bit index names
  // exactly one node and duplicate members cannot smuggle two verdicts.
  if (!std::is_sorted(f.members.begin(), f.members.end()) ||
      std::adjacent_find(f.members.begin(), f.members.end()) !=
          f.members.end()) {
    return std::nullopt;
  }
  f.bitmap = r.var_bytes();
  f.root = r.var_bytes();
  f.raw_bytes = r.u32();
  f.mac = r.var_bytes();
  if (!r.done()) return std::nullopt;
  if (f.bitmap.size() != (f.members.size() + 7) / 8) return std::nullopt;
  return f;
}

Bytes aggregate_mac_input(const AggregateFrame& frame) {
  ByteWriter w;
  w.u32(frame.flood);
  w.u32(frame.head);
  write_members(w, frame.members);
  w.var_bytes(frame.bitmap);
  w.var_bytes(frame.root);
  w.u32(frame.raw_bytes);
  return w.take();
}

bool verify_aggregate(const AggregateFrame& frame, crypto::MacAlgo algo,
                      ByteView key) {
  return crypto::Mac::verify(algo, key, aggregate_mac_input(frame),
                             frame.mac);
}

}  // namespace erasmus::aggregate
