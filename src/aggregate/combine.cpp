#include "aggregate/combine.h"

#include <limits>
#include <utility>

#include "attest/protocol.h"
#include "common/serde.h"

namespace erasmus::aggregate {

Bytes evidence_leaf(crypto::HashAlgo algo, net::NodeId origin,
                    ByteView response) {
  ByteWriter w;
  w.u32(origin);
  w.raw(response);
  return crypto::Hash::digest(algo, w.take());
}

Bytes hash_tree_root(crypto::HashAlgo algo, std::vector<Bytes> leaves) {
  if (leaves.empty()) {
    return Bytes(crypto::Hash::create(algo)->digest_size(), 0);
  }
  while (leaves.size() > 1) {
    std::vector<Bytes> next;
    next.reserve((leaves.size() + 1) / 2);
    for (size_t i = 0; i + 1 < leaves.size(); i += 2) {
      next.push_back(
          crypto::Hash::digest(algo, concat(leaves[i], leaves[i + 1])));
    }
    if (leaves.size() % 2 != 0) next.push_back(std::move(leaves.back()));
    leaves = std::move(next);
  }
  return std::move(leaves.front());
}

Combiner::Combiner(crypto::HashAlgo hash, Bytes reference_digest)
    : hash_(hash), reference_(std::move(reference_digest)) {}

void Combiner::absorb(net::NodeId origin, ByteView response) {
  if (entries_.count(origin) != 0) return;
  Entry entry;
  entry.leaf = evidence_leaf(hash_, origin, response);
  if (!reference_.empty()) {
    const auto resp = attest::CollectResponse::deserialize(response);
    if (resp && !resp->measurements.empty()) {
      entry.healthy = true;
      for (const auto& m : resp->measurements) {
        if (!equal(m.digest, reference_)) {
          entry.healthy = false;
          break;
        }
      }
    }
  }
  raw_bytes_ += response.size();
  entries_.emplace(origin, std::move(entry));
}

AggregateFrame Combiner::build(uint32_t flood, net::NodeId head) const {
  AggregateFrame frame;
  frame.flood = flood;
  frame.head = head;
  frame.members.reserve(entries_.size());
  frame.bitmap.assign((entries_.size() + 7) / 8, 0);
  std::vector<Bytes> leaves;
  leaves.reserve(entries_.size());
  size_t i = 0;
  for (const auto& [origin, entry] : entries_) {
    frame.members.push_back(origin);
    if (entry.healthy) frame.bitmap[i / 8] |= uint8_t{1} << (i % 8);
    leaves.push_back(entry.leaf);
    ++i;
  }
  frame.root = hash_tree_root(hash_, std::move(leaves));
  frame.raw_bytes = static_cast<uint32_t>(
      std::min<uint64_t>(raw_bytes_, std::numeric_limits<uint32_t>::max()));
  return frame;
}

}  // namespace erasmus::aggregate
