// Deterministic adversary engine: scripted attacks against a running fleet.
//
// The paper's central claim (§3.5, §7) is that periodic self-measurement
// catches *mobile* malware -- code that migrates between devices trying to
// dodge each host's next measurement -- with probability approaching 1 once
// T_M drops below the time the malware must dwell on a host to do anything
// useful. This engine makes that claim measurable: it plans an infection
// itinerary BEFORE the run (a pure function of config + fleet plan), injects
// and removes payloads on schedule, watches self-measurements capture them,
// and stamps each campaign with the sim-time from infection to the first
// failed attestation verdict (detection latency).
//
// Determinism contract (the runner's 1/2/8-thread byte-identity invariant
// extends to every adversary metric and trace):
//  * Planning happens in the constructor from (config, specs) only -- no
//    clock, no shard layout, no shared RNG. The itinerary is identical at
//    any thread count.
//  * Shard-side hooks (enter_leg / leave_leg / on_measurement) touch only
//    per-device slots of preallocated vectors -- the same lock-free
//    discipline TraceShard and DeviceMeter use.
//  * Coordinator-side hooks (verdicts, link vetoes, trace emission,
//    snapshots) run single-threaded at barriers, after the shard join.
//
// The measurement-aware strategy plans against the ANALYTIC schedule
// (stagger offset + k * nominal T_M). Real provers reschedule from
// measurement *completion*, so actual measurement times only ever drift
// later than the analytic prediction -- which makes "leave before the
// predicted tick" conservative: an aware adversary never gets caught by a
// measurement landing earlier than planned. Irregular (key-derived)
// schedules are unpredictable without K, so against them the aware strategy
// degrades to hopeful guessing -- exactly the paper's argument for them.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "attest/prover.h"
#include "obs/trace.h"
#include "sim/time.h"
#include "swarm/provision.h"

namespace erasmus::adversary {

/// Which attacker family the engine runs (scenario knob `adversary=`).
enum class Mode : uint8_t {
  kOff,      // engine inert (fault injection may still be scheduled)
  kRoaming,  // mobile malware migrating between devices
  kRelay,    // compromised relay nodes dropping/corrupting relayed frames
  kSybil,    // compromised relays flooding forged-origin reports
};

/// Roaming migration strategy (scenario knob `migration=`).
enum class Migration : uint8_t {
  kRandomWalk,  // hop to a random free host, sit a full dwell
  kAware,       // pick the host with the most slack before its next
                // (predicted) measurement; flee just before the tick
  kDwellBound,  // random host, dwell drawn uniform in [dwell/2, dwell]
};

/// Throws std::invalid_argument naming the bad value (loud-knob style).
Mode parse_mode(const std::string& text);
Migration parse_migration(const std::string& text);

/// Scheduled network partition: the fleet is cut in half (device id below
/// fleet/2 vs the rest) from `at` until `at + heal_after`.
struct PartitionEvent {
  sim::Time at;
  sim::Duration heal_after;
};

/// Scheduled loss burst on the overlay radio: loss probability jumps to
/// `loss` at `at` and reverts to the configured baseline after `duration`.
struct LossBurst {
  sim::Time at;
  sim::Duration duration;
  double loss = 0.5;
};

struct EngineConfig {
  Mode mode = Mode::kOff;
  Migration migration = Migration::kAware;
  /// How long the malware must sit on one host to do useful work -- the
  /// paper's lever: detection probability rises toward 1 as T_M drops
  /// below this.
  sim::Duration dwell = sim::Duration::minutes(12);
  /// Independent roaming campaigns (each its own infection chain).
  size_t chains = 2;
  /// First infections land within [first_infection, first_infection +
  /// dwell), spread per-chain by the seeded RNG.
  sim::Duration first_infection = sim::Duration::minutes(5);
  /// Migration gap between leaving one host and entering the next.
  sim::Duration hop_gap = sim::Duration::seconds(30);
  /// kAware: evasive hops in a row before the malware must sit through a
  /// measurement anyway (it has work to do -- endless fleeing is free for
  /// the defender).
  int max_evasions = 3;
  uint64_t seed = 1;
  /// kRelay/kSybil: fraction of relay nodes compromised (at least one).
  double compromised_fraction = 0.15;
  /// kRelay: corrupt relayed frames instead of dropping them.
  bool corrupt_frames = false;
  /// kSybil: forged-origin reports injected per first-sight flood.
  uint32_t sybil_per_flood = 4;
  /// Network fault injection, active in any mode (kOff included).
  std::vector<PartitionEvent> partitions;
  std::vector<LossBurst> loss_bursts;
};

/// One residency of one chain on one host, planned before the run.
/// enter/leave and the classification flags are written at plan time; the
/// runtime flags below are written shard-side by the owning device's
/// thread and read by the coordinator at barriers (the thread join is the
/// synchronization point).
struct Leg {
  size_t chain = 0;
  swarm::DeviceId device = 0;
  sim::Time enter;
  sim::Time leave;
  const char* reason = "";  // strategy tag for traces (static string)
  bool first = false;       // chain's initial infection (infect vs migrate)
  bool evade = false;       // leaves early to dodge the predicted tick
  bool forced = false;      // evasion budget spent: sits through the tick
  // Runtime (shard-written):
  bool entered = false;
  bool left = false;
  bool measured = false;    // a self-measurement ran while resident
  sim::Time measured_at;    // first such measurement
};

class Engine {
 public:
  /// Plans the full itinerary. `staggered` and `specs` reproduce the
  /// runner's analytic measurement schedule; `horizon` bounds planning
  /// (rounds * round_interval). Pure function of its arguments.
  Engine(EngineConfig config, const std::vector<swarm::DeviceSpec>& specs,
         bool staggered, swarm::DeviceId root, sim::Time horizon);

  const EngineConfig& config() const { return config_; }
  const std::vector<Leg>& legs() const { return legs_; }

  // --- Shard-side hooks (owning device's thread, between barriers) ---

  /// Implants the payload: saves the overwritten bytes, scribbles the
  /// attested region, marks the leg resident.
  void enter_leg(size_t leg, attest::Prover& prover);
  /// Restores the saved bytes and clears residency (the mobile-malware
  /// self-clean that makes past-infection detection interesting).
  void leave_leg(size_t leg, attest::Prover& prover);
  /// Measurement-observer hook: if a chain is resident on `device`, the
  /// measurement captured its payload.
  void on_measurement(swarm::DeviceId device, sim::Time at);

  // --- Coordinator-side (barriers / collection only) ---

  void set_trace(obs::TraceRecorder* trace) { trace_ = trace; }

  /// Feeds one attestation verdict. A failed verdict on a device hosting
  /// a measured, not-yet-detected leg detects that chain (detection
  /// latency = at - chain start) and emits a kAdversary "detected"
  /// instant. Repeat flags of already-detected chains and flags the
  /// engine cannot attribute are counted separately.
  void on_verdict(swarm::DeviceId device, bool healthy, sim::Time at);

  /// True when relay node `id` is compromised (kRelay/kSybil only).
  bool relay_compromised(swarm::DeviceId id) const;

  /// Partition veto for link predicates: false while a scheduled
  /// partition separates `a` and `b`.
  bool link_allowed(swarm::DeviceId a, swarm::DeviceId b,
                    sim::Time at) const;

  /// Replays itinerary instants (infect/migrate/evade/leave/captured)
  /// with timestamps in (last call, upto] into the kAdversary trace
  /// category, sorted by (time, leg). Call at barriers, after the shard
  /// merge -- like the runner's dark sweep, events may carry timestamps
  /// inside the interval just simulated.
  void emit_trace(sim::Time upto);

  /// Cumulative campaign counters (coordinator-side; the runner emits
  /// per-round deltas).
  struct Snapshot {
    uint64_t infections = 0;   // first legs entered
    uint64_t migrations = 0;   // subsequent legs entered
    uint64_t evasions = 0;     // evade legs completed
    uint64_t captures = 0;     // legs a self-measurement caught
    uint64_t detections = 0;   // chains with a failed verdict
    uint64_t active = 0;       // legs currently resident
    double mean_detection_latency_ms = 0.0;  // over detected chains
  };
  Snapshot snapshot() const;

  // --- Campaign results (for scenarios and benches) ---
  size_t chain_count() const { return chains_.size(); }
  size_t detected_chains() const;
  /// detected / planned chains; 0 when no chains were planned.
  double detection_probability() const;
  /// Mean infection-to-first-failed-verdict time over detected chains.
  sim::Duration mean_detection_latency() const;
  uint64_t migrations_total() const;
  uint64_t evasions_total() const;
  uint64_t captures_total() const;
  /// Verdict-attribution tallies (failed verdicts beyond first detection,
  /// and ones no measured leg explains -- e.g. externally planted code).
  uint64_t repeat_flags() const { return repeat_flags_; }
  uint64_t unattributed_flags() const { return unattributed_flags_; }

 private:
  struct Chain {
    sim::Time started;
    bool detected = false;
    sim::Time detected_at;
  };

  /// The analytic k-th-measurement instant strictly after `t` for device
  /// `d` (stagger offset + steps of nominal T_M).
  sim::Time next_measurement(swarm::DeviceId d, sim::Time t) const;
  bool interval_free(swarm::DeviceId d, sim::Time from, sim::Time to) const;
  void plan_roaming();
  void plan_compromised_relays();

  EngineConfig config_;
  size_t fleet_ = 0;
  swarm::DeviceId root_ = 0;
  sim::Time horizon_;
  std::vector<sim::Duration> first_;   // analytic first measurement offset
  std::vector<sim::Duration> period_;  // nominal T_M per device

  std::vector<Leg> legs_;
  std::vector<Chain> chains_;
  std::vector<std::vector<std::pair<sim::Time, sim::Time>>> busy_;
  /// Per-device residency (index into legs_, -1 = clean) and the bytes the
  /// payload overwrote. Shard threads touch only their own devices' slots.
  std::vector<int32_t> active_leg_;
  std::vector<Bytes> saved_;
  std::vector<bool> compromised_;

  obs::TraceRecorder* trace_ = nullptr;
  sim::Time last_emit_;
  uint64_t repeat_flags_ = 0;
  uint64_t unattributed_flags_ = 0;
};

}  // namespace erasmus::adversary
