#include "adversary/adversary.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sim/rng.h"

namespace erasmus::adversary {

namespace {
/// Payload shape shared with malware::Infector: 64 bytes of 0xEB at the
/// midpoint of the attested region -- big enough that any digest over the
/// region flips, small enough to save/restore cheaply.
constexpr size_t kPayloadSize = 64;
constexpr uint8_t kPayloadByte = 0xEB;

/// How long before the predicted measurement an aware chain flees. The
/// analytic prediction is a lower bound on the actual tick (provers
/// reschedule from completion), so any positive margin is safe.
constexpr sim::Duration kEvadeMargin = sim::Duration::millis(2);

size_t payload_offset(size_t region) {
  size_t offset = region / 2;
  if (offset + kPayloadSize > region) offset = 0;
  return offset;
}
}  // namespace

Mode parse_mode(const std::string& text) {
  if (text == "off") return Mode::kOff;
  if (text == "roaming") return Mode::kRoaming;
  if (text == "relay") return Mode::kRelay;
  if (text == "sybil") return Mode::kSybil;
  throw std::invalid_argument(
      "adversary: expected 'off', 'roaming', 'relay' or 'sybil', got '" +
      text + "'");
}

Migration parse_migration(const std::string& text) {
  if (text == "random") return Migration::kRandomWalk;
  if (text == "aware") return Migration::kAware;
  if (text == "dwell") return Migration::kDwellBound;
  throw std::invalid_argument(
      "migration: expected 'random', 'aware' or 'dwell', got '" + text +
      "'");
}

Engine::Engine(EngineConfig config,
               const std::vector<swarm::DeviceSpec>& specs, bool staggered,
               swarm::DeviceId root, sim::Time horizon)
    : config_(std::move(config)), fleet_(specs.size()), root_(root),
      horizon_(horizon) {
  first_.reserve(fleet_);
  period_.reserve(fleet_);
  for (swarm::DeviceId d = 0; d < fleet_; ++d) {
    // The runner's analytic schedule: staggered fleets take their first
    // measurement at the stagger offset, unstaggered ones one nominal
    // period in. Irregular schedules are keyed and unpredictable; their
    // nominal midpoint is the best an adversary without K can do.
    const sim::Duration tm = swarm::nominal_tm(specs[d]);
    period_.push_back(tm);
    first_.push_back(staggered ? swarm::stagger_offset(tm, d, fleet_) : tm);
  }
  busy_.resize(fleet_);
  active_leg_.assign(fleet_, -1);
  saved_.resize(fleet_);
  plan_compromised_relays();
  plan_roaming();
}

sim::Time Engine::next_measurement(swarm::DeviceId d, sim::Time t) const {
  const sim::Time first = sim::Time::zero() + first_[d];
  if (t < first) return first;
  const sim::Duration period = period_[d];
  if (period.ns() == 0) return t;
  // Strictly after t: landing exactly on a tick means that tick fires.
  const uint64_t k = (t - first) / period + 1;
  return first + period * k;
}

bool Engine::interval_free(swarm::DeviceId d, sim::Time from,
                           sim::Time to) const {
  for (const auto& [b, e] : busy_[d]) {
    if (from < e && b < to) return false;
  }
  return true;
}

void Engine::plan_compromised_relays() {
  compromised_.assign(fleet_, false);
  if (config_.mode != Mode::kRelay && config_.mode != Mode::kSybil) return;
  if (fleet_ < 2) return;  // the root is never compromised
  size_t want = static_cast<size_t>(std::llround(
      config_.compromised_fraction * static_cast<double>(fleet_)));
  want = std::min(std::max<size_t>(want, 1), fleet_ - 1);
  sim::Rng rng(config_.seed ^ 0x5e1ec7ed'ce11ull);
  size_t placed = 0;
  while (placed < want) {
    const auto id = static_cast<swarm::DeviceId>(rng.next_below(fleet_));
    if (id == root_ || compromised_[id]) continue;
    compromised_[id] = true;
    ++placed;
  }
}

void Engine::plan_roaming() {
  if (config_.mode != Mode::kRoaming || config_.chains == 0 || fleet_ < 2) {
    return;
  }
  const sim::Duration dwell = config_.dwell;
  for (size_t c = 0; c < config_.chains; ++c) {
    // Per-chain stream: chains plan independently of each other's RNG
    // draws (adding a chain never reshuffles existing itineraries).
    sim::Rng rng(config_.seed + 0x9E3779B97F4A7C15ull * (c + 1));
    sim::Time t = sim::Time::zero() + config_.first_infection +
                  sim::Duration::nanos(
                      rng.next_below(std::max<uint64_t>(1, dwell.ns())));
    const size_t chain = chains_.size();
    int32_t prev = -1;
    int evasions = 0;
    bool first = true;
    bool started = false;
    while (t < horizon_) {
      int32_t pick = -1;
      sim::Duration pick_dur = dwell;
      const char* reason = "random";
      bool evade = false;
      bool forced = false;
      if (config_.migration == Migration::kAware) {
        // Hop to the host with the most slack before its next predicted
        // measurement. Enough slack -> a full safe dwell; too little
        // everywhere -> flee just before the tick, until the evasion
        // budget runs out and the malware must sit through one (it has
        // work to do -- endless fleeing is a defender win by itself).
        sim::Duration best_slack;
        for (swarm::DeviceId d = 0; d < fleet_; ++d) {
          if (d == root_ || static_cast<int32_t>(d) == prev) continue;
          const sim::Duration slack = next_measurement(d, t) - t;
          sim::Duration dur = dwell;
          bool d_evade = false;
          bool d_forced = false;
          if (slack > dwell) {
            // safe host
          } else if (evasions < config_.max_evasions &&
                     slack > kEvadeMargin) {
            dur = slack - kEvadeMargin;
            d_evade = true;
          } else {
            d_forced = true;
          }
          if (!interval_free(d, t, t + dur)) continue;
          if (pick < 0 || slack > best_slack) {
            pick = static_cast<int32_t>(d);
            best_slack = slack;
            pick_dur = dur;
            evade = d_evade;
            forced = d_forced;
          }
        }
        reason = evade ? "evade_window" : (forced ? "forced_dwell"
                                                  : "safe_host");
      } else {
        if (config_.migration == Migration::kDwellBound) {
          pick_dur = sim::Duration::nanos(
              dwell.ns() / 2 +
              rng.next_below(std::max<uint64_t>(1, dwell.ns() / 2 + 1)));
          reason = "dwell";
        }
        const size_t start = rng.next_below(fleet_);
        for (size_t off = 0; off < fleet_; ++off) {
          const auto d =
              static_cast<swarm::DeviceId>((start + off) % fleet_);
          if (d == root_ || static_cast<int32_t>(d) == prev) continue;
          if (!interval_free(d, t, t + pick_dur)) continue;
          pick = static_cast<int32_t>(d);
          break;
        }
      }
      if (pick < 0) {
        // Every candidate is occupied by another chain right now: skip
        // ahead one dwell and try again (t grows, so this terminates).
        t = t + dwell + config_.hop_gap;
        continue;
      }
      Leg leg;
      leg.chain = chain;
      leg.device = static_cast<swarm::DeviceId>(pick);
      leg.enter = t;
      leg.leave = t + pick_dur;
      leg.reason = reason;
      leg.first = first;
      leg.evade = evade;
      leg.forced = forced;
      legs_.push_back(leg);
      busy_[leg.device].push_back({leg.enter, leg.leave});
      if (!started) {
        chains_.push_back({leg.enter, false, {}});
        started = true;
      }
      evasions = evade ? evasions + 1 : 0;
      prev = pick;
      first = false;
      t = leg.leave + config_.hop_gap;
    }
  }
}

void Engine::enter_leg(size_t leg_index, attest::Prover& prover) {
  Leg& leg = legs_[leg_index];
  hw::DeviceMemory& mem = prover.memory();
  const hw::RegionId app = prover.attested_region();
  const size_t region = mem.region_size(app);
  if (region < kPayloadSize) return;  // nowhere to implant
  const size_t offset = payload_offset(region);
  saved_[leg.device] =
      mem.read(app, offset, kPayloadSize, /*privileged=*/false);
  mem.write(app, offset, Bytes(kPayloadSize, kPayloadByte),
            /*privileged=*/false);
  active_leg_[leg.device] = static_cast<int32_t>(leg_index);
  leg.entered = true;
}

void Engine::leave_leg(size_t leg_index, attest::Prover& prover) {
  Leg& leg = legs_[leg_index];
  if (!leg.entered || leg.left) return;
  if (!saved_[leg.device].empty()) {
    // Self-clean on the way out: restore the overwritten bytes so only a
    // measurement taken DURING residency can tell -- the paper's case for
    // detecting infections in the past.
    const hw::RegionId app = prover.attested_region();
    const size_t offset = payload_offset(prover.memory().region_size(app));
    prover.memory().write(app, offset, saved_[leg.device],
                          /*privileged=*/false);
    saved_[leg.device].clear();
  }
  active_leg_[leg.device] = -1;
  leg.left = true;
}

void Engine::on_measurement(swarm::DeviceId device, sim::Time at) {
  const int32_t idx = active_leg_[device];
  if (idx < 0) return;
  Leg& leg = legs_[static_cast<size_t>(idx)];
  if (!leg.measured) {
    leg.measured = true;
    leg.measured_at = at;
  }
}

void Engine::on_verdict(swarm::DeviceId device, bool healthy, sim::Time at) {
  if (healthy || device >= fleet_) return;
  // A failed verdict is attributed to the earliest-entered measured leg
  // on this device whose chain is still undetected; the infected record
  // stays in the device's store, so later rounds re-flag it (repeat).
  int32_t best = -1;
  bool any_measured = false;
  for (size_t i = 0; i < legs_.size(); ++i) {
    const Leg& leg = legs_[i];
    if (leg.device != device || !leg.measured || at < leg.measured_at) {
      continue;
    }
    any_measured = true;
    if (chains_[leg.chain].detected) continue;
    if (best < 0 || leg.enter < legs_[static_cast<size_t>(best)].enter) {
      best = static_cast<int32_t>(i);
    }
  }
  if (best < 0) {
    if (any_measured) {
      ++repeat_flags_;
    } else {
      ++unattributed_flags_;  // a flag no measured leg explains
    }
    return;
  }
  const Leg& leg = legs_[static_cast<size_t>(best)];
  Chain& chain = chains_[leg.chain];
  chain.detected = true;
  chain.detected_at = at;
  if (trace_ && trace_->enabled(obs::Subsystem::kAdversary)) {
    trace_->instant(
        obs::Subsystem::kAdversary, at, "detected",
        {{"chain", static_cast<uint64_t>(leg.chain)},
         {"device", static_cast<uint64_t>(device)},
         {"latency_ms",
          static_cast<double>((at - chain.started).ns()) / 1e6}});
  }
}

bool Engine::relay_compromised(swarm::DeviceId id) const {
  return id < compromised_.size() && compromised_[id];
}

bool Engine::link_allowed(swarm::DeviceId a, swarm::DeviceId b,
                          sim::Time at) const {
  for (const PartitionEvent& p : config_.partitions) {
    if (p.at <= at && at < p.at + p.heal_after) {
      const bool side_a = a < fleet_ / 2;
      const bool side_b = b < fleet_ / 2;
      if (side_a != side_b) return false;
    }
  }
  return true;
}

void Engine::emit_trace(sim::Time upto) {
  if (!trace_ || !trace_->enabled(obs::Subsystem::kAdversary)) {
    last_emit_ = upto;
    return;
  }
  struct Pending {
    sim::Time at;
    size_t leg;
    int kind;  // 0 enter, 1 leave, 2 captured
  };
  std::vector<Pending> pending;
  for (size_t i = 0; i < legs_.size(); ++i) {
    const Leg& leg = legs_[i];
    if (leg.entered && last_emit_ < leg.enter && leg.enter <= upto) {
      pending.push_back({leg.enter, i, 0});
    }
    if (leg.left && last_emit_ < leg.leave && leg.leave <= upto) {
      pending.push_back({leg.leave, i, 1});
    }
    if (leg.measured && last_emit_ < leg.measured_at &&
        leg.measured_at <= upto) {
      pending.push_back({leg.measured_at, i, 2});
    }
  }
  std::sort(pending.begin(), pending.end(),
            [](const Pending& a, const Pending& b) {
              if (a.at != b.at) return a.at < b.at;
              if (a.leg != b.leg) return a.leg < b.leg;
              return a.kind < b.kind;
            });
  for (const Pending& p : pending) {
    const Leg& leg = legs_[p.leg];
    const char* name = "captured";
    if (p.kind == 0) name = leg.first ? "infect" : "migrate";
    if (p.kind == 1) name = leg.evade ? "evade" : "leave";
    obs::TraceArgs args = {{"chain", static_cast<uint64_t>(leg.chain)},
                           {"device", static_cast<uint64_t>(leg.device)}};
    if (p.kind == 0) args.push_back({"reason", leg.reason});
    trace_->instant(obs::Subsystem::kAdversary, p.at, name,
                    std::move(args));
  }
  last_emit_ = upto;
}

Engine::Snapshot Engine::snapshot() const {
  Snapshot snap;
  for (const Leg& leg : legs_) {
    if (leg.entered) {
      if (leg.first) {
        ++snap.infections;
      } else {
        ++snap.migrations;
      }
      if (!leg.left) ++snap.active;
    }
    if (leg.left && leg.evade) ++snap.evasions;
    if (leg.measured) ++snap.captures;
  }
  snap.detections = detected_chains();
  snap.mean_detection_latency_ms =
      static_cast<double>(mean_detection_latency().ns()) / 1e6;
  return snap;
}

size_t Engine::detected_chains() const {
  return static_cast<size_t>(
      std::count_if(chains_.begin(), chains_.end(),
                    [](const Chain& c) { return c.detected; }));
}

double Engine::detection_probability() const {
  if (chains_.empty()) return 0.0;
  return static_cast<double>(detected_chains()) /
         static_cast<double>(chains_.size());
}

sim::Duration Engine::mean_detection_latency() const {
  uint64_t total_ns = 0;
  uint64_t n = 0;
  for (const Chain& chain : chains_) {
    if (!chain.detected) continue;
    total_ns += (chain.detected_at - chain.started).ns();
    ++n;
  }
  if (n == 0) return sim::Duration::nanos(0);
  return sim::Duration::nanos(total_ns / n);
}

uint64_t Engine::migrations_total() const {
  uint64_t n = 0;
  for (const Leg& leg : legs_) {
    if (leg.entered && !leg.first) ++n;
  }
  return n;
}

uint64_t Engine::evasions_total() const {
  uint64_t n = 0;
  for (const Leg& leg : legs_) {
    if (leg.left && leg.evade) ++n;
  }
  return n;
}

uint64_t Engine::captures_total() const {
  uint64_t n = 0;
  for (const Leg& leg : legs_) {
    if (leg.measured) ++n;
  }
  return n;
}

}  // namespace erasmus::adversary
